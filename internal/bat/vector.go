package bat

import (
	"fmt"
	"strings"
)

// Vector is a densely packed, typed column of values — the tail of a BAT.
// All bulk operators in internal/algebra consume and produce Vectors.
//
// The concrete implementations (Ints, Floats, Strs, Bools, Times) are named
// slice types so that hot loops can type-switch once per operator call and
// then run over a raw slice, the "vector-at-a-time" execution style of the
// MonetDB kernel that the paper builds on.
type Vector interface {
	// Kind reports the element type.
	Kind() Kind
	// Len reports the number of elements.
	Len() int
	// Get boxes element i. It is used only at the engine edges; bulk
	// operators access the underlying slices directly.
	Get(i int) Value
	// Append adds a boxed value of the vector's kind and returns the
	// (possibly reallocated) vector, in the manner of the append builtin.
	Append(v Value) Vector
	// AppendVector bulk-appends another vector of the same kind.
	AppendVector(o Vector) Vector
	// Slice returns a view of elements [lo, hi). The view shares storage.
	Slice(lo, hi int) Vector
	// CopyRange returns a freshly allocated copy of elements [lo, hi).
	CopyRange(lo, hi int) Vector
	// New returns an empty vector of the same kind with the given capacity.
	New(capacity int) Vector
}

// NewVector returns an empty vector of the given kind.
func NewVector(k Kind, capacity int) Vector {
	switch k {
	case Int:
		return make(Ints, 0, capacity)
	case Float:
		return make(Floats, 0, capacity)
	case Str:
		return make(Strs, 0, capacity)
	case Bool:
		return make(Bools, 0, capacity)
	case Time:
		return make(Times, 0, capacity)
	default:
		panic(fmt.Sprintf("bat: NewVector of unknown kind %d", k))
	}
}

// Ints is a vector of 64-bit integers.
type Ints []int64

// Kind implements Vector.
func (v Ints) Kind() Kind { return Int }

// Len implements Vector.
func (v Ints) Len() int { return len(v) }

// Get implements Vector.
func (v Ints) Get(i int) Value { return IntValue(v[i]) }

// Append implements Vector.
func (v Ints) Append(x Value) Vector { return append(v, x.AsInt()) }

// AppendVector implements Vector.
func (v Ints) AppendVector(o Vector) Vector { return append(v, o.(Ints)...) }

// Slice implements Vector.
func (v Ints) Slice(lo, hi int) Vector { return v[lo:hi] }

// CopyRange implements Vector.
func (v Ints) CopyRange(lo, hi int) Vector {
	out := make(Ints, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// New implements Vector.
func (v Ints) New(capacity int) Vector { return make(Ints, 0, capacity) }

// Floats is a vector of 64-bit floating point numbers.
type Floats []float64

// Kind implements Vector.
func (v Floats) Kind() Kind { return Float }

// Len implements Vector.
func (v Floats) Len() int { return len(v) }

// Get implements Vector.
func (v Floats) Get(i int) Value { return FloatValue(v[i]) }

// Append implements Vector.
func (v Floats) Append(x Value) Vector { return append(v, x.AsFloat()) }

// AppendVector implements Vector.
func (v Floats) AppendVector(o Vector) Vector { return append(v, o.(Floats)...) }

// Slice implements Vector.
func (v Floats) Slice(lo, hi int) Vector { return v[lo:hi] }

// CopyRange implements Vector.
func (v Floats) CopyRange(lo, hi int) Vector {
	out := make(Floats, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// New implements Vector.
func (v Floats) New(capacity int) Vector { return make(Floats, 0, capacity) }

// Strs is a vector of strings.
type Strs []string

// Kind implements Vector.
func (v Strs) Kind() Kind { return Str }

// Len implements Vector.
func (v Strs) Len() int { return len(v) }

// Get implements Vector.
func (v Strs) Get(i int) Value { return StrValue(v[i]) }

// Append implements Vector.
func (v Strs) Append(x Value) Vector { return append(v, x.S) }

// AppendVector implements Vector.
func (v Strs) AppendVector(o Vector) Vector { return append(v, o.(Strs)...) }

// Slice implements Vector.
func (v Strs) Slice(lo, hi int) Vector { return v[lo:hi] }

// CopyRange implements Vector.
func (v Strs) CopyRange(lo, hi int) Vector {
	out := make(Strs, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// New implements Vector.
func (v Strs) New(capacity int) Vector { return make(Strs, 0, capacity) }

// Bools is a vector of booleans.
type Bools []bool

// Kind implements Vector.
func (v Bools) Kind() Kind { return Bool }

// Len implements Vector.
func (v Bools) Len() int { return len(v) }

// Get implements Vector.
func (v Bools) Get(i int) Value { return BoolValue(v[i]) }

// Append implements Vector.
func (v Bools) Append(x Value) Vector { return append(v, x.B) }

// AppendVector implements Vector.
func (v Bools) AppendVector(o Vector) Vector { return append(v, o.(Bools)...) }

// Slice implements Vector.
func (v Bools) Slice(lo, hi int) Vector { return v[lo:hi] }

// CopyRange implements Vector.
func (v Bools) CopyRange(lo, hi int) Vector {
	out := make(Bools, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// New implements Vector.
func (v Bools) New(capacity int) Vector { return make(Bools, 0, capacity) }

// Times is a vector of timestamps, stored as microseconds since the epoch.
// It is a distinct type from Ints so that results render as timestamps and
// the binder can type-check temporal expressions.
type Times []int64

// Kind implements Vector.
func (v Times) Kind() Kind { return Time }

// Len implements Vector.
func (v Times) Len() int { return len(v) }

// Get implements Vector.
func (v Times) Get(i int) Value { return TimeValue(v[i]) }

// Append implements Vector.
func (v Times) Append(x Value) Vector { return append(v, x.AsInt()) }

// AppendVector implements Vector.
func (v Times) AppendVector(o Vector) Vector { return append(v, o.(Times)...) }

// Slice implements Vector.
func (v Times) Slice(lo, hi int) Vector { return v[lo:hi] }

// CopyRange implements Vector.
func (v Times) CopyRange(lo, hi int) Vector {
	out := make(Times, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// New implements Vector.
func (v Times) New(capacity int) Vector { return make(Times, 0, capacity) }

// AsInts returns the underlying int64 slice of an Int or Time vector. The
// two kinds share a payload representation, which lets numeric kernels
// handle timestamps for free.
func AsInts(v Vector) []int64 {
	switch x := v.(type) {
	case Ints:
		return x
	case Times:
		return x
	}
	panic(fmt.Sprintf("bat: AsInts on %s vector", v.Kind()))
}

// VectorString renders a vector for debugging and the demo monitor,
// truncating long vectors.
func VectorString(v Vector) string {
	const maxShow = 16
	var b strings.Builder
	b.WriteString(v.Kind().String())
	b.WriteByte('[')
	n := v.Len()
	for i := 0; i < n && i < maxShow; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.Get(i).String())
	}
	if n > maxShow {
		fmt.Fprintf(&b, " … +%d", n-maxShow)
	}
	b.WriteByte(']')
	return b.String()
}

// AppendFetch appends src's elements at the sel positions onto dst,
// returning the (possibly reallocated) destination — a fused
// gather+append that lets a sharded basket route rows into its shards
// with a single copy. dst and src must share a kind.
func AppendFetch(dst, src Vector, sel []int32) Vector {
	switch d := dst.(type) {
	case Ints:
		return Ints(appendFetch(d, src.(Ints), sel))
	case Times:
		return Times(appendFetch(d, src.(Times), sel))
	case Floats:
		return Floats(appendFetch(d, src.(Floats), sel))
	case Strs:
		return Strs(appendFetch(d, src.(Strs), sel))
	case Bools:
		return Bools(appendFetch(d, src.(Bools), sel))
	}
	panic(fmt.Sprintf("bat: AppendFetch on unknown vector %T", dst))
}

func appendFetch[T any](dst, src []T, sel []int32) []T {
	for _, i := range sel {
		dst = append(dst, src[i])
	}
	return dst
}
