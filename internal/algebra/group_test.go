package algebra

import (
	"math/rand"
	"testing"

	"datacell/internal/bat"
)

func TestGroupInt(t *testing.T) {
	v := ints(7, 8, 7, 9, 8)
	g := Group([]bat.Vector{v}, nil, v.Len())
	if g.N != 3 {
		t.Fatalf("N = %d, want 3", g.N)
	}
	want := []int32{0, 1, 0, 2, 1}
	for i, gid := range g.GIDs {
		if gid != want[i] {
			t.Errorf("GIDs[%d] = %d, want %d", i, gid, want[i])
		}
	}
	if !selEqual(g.Repr, Sel{0, 1, 3}) {
		t.Errorf("Repr = %v", g.Repr)
	}
}

func TestGroupStr(t *testing.T) {
	v := bat.Strs{"a", "b", "a"}
	g := Group([]bat.Vector{v}, nil, v.Len())
	if g.N != 2 || g.GIDs[2] != 0 {
		t.Errorf("string grouping = %+v", g)
	}
}

func TestGroupComposite(t *testing.T) {
	a := ints(1, 1, 2, 1)
	b := bat.Strs{"x", "y", "x", "x"}
	g := Group([]bat.Vector{a, b}, nil, a.Len())
	if g.N != 3 {
		t.Fatalf("N = %d, want 3", g.N)
	}
	if g.GIDs[0] != g.GIDs[3] {
		t.Error("rows 0 and 3 should share a group")
	}
	if g.GIDs[0] == g.GIDs[1] || g.GIDs[0] == g.GIDs[2] {
		t.Error("distinct keys grouped together")
	}
}

func TestGroupNoKeys(t *testing.T) {
	g := Group(nil, nil, 5)
	if g.N != 1 || len(g.GIDs) != 5 {
		t.Errorf("no-key grouping = %+v", g)
	}
	empty := Group(nil, Sel{}, 5)
	if empty.N != 0 || len(empty.GIDs) != 0 {
		t.Errorf("empty grouping = %+v", empty)
	}
}

func TestGroupWithCandidates(t *testing.T) {
	v := ints(7, 8, 7, 9)
	g := Group([]bat.Vector{v}, Sel{1, 3}, v.Len())
	if g.N != 2 || len(g.GIDs) != 2 {
		t.Errorf("candidate grouping = %+v", g)
	}
	if !selEqual(g.Repr, Sel{1, 3}) {
		t.Errorf("Repr = %v", g.Repr)
	}
}

func TestAggregates(t *testing.T) {
	keys := ints(1, 2, 1, 2, 1)
	vals := ints(10, 20, 30, 40, 50)
	g := Group([]bat.Vector{keys}, nil, keys.Len())

	cnt := CountGroups(g)
	if cnt[0] != 3 || cnt[1] != 2 {
		t.Errorf("count = %v", cnt)
	}
	sum := SumGroups(vals, nil, g).(bat.Ints)
	if sum[0] != 90 || sum[1] != 60 {
		t.Errorf("sum = %v", sum)
	}
	minv := MinGroups(vals, nil, g).(bat.Ints)
	if minv[0] != 10 || minv[1] != 20 {
		t.Errorf("min = %v", minv)
	}
	maxv := MaxGroups(vals, nil, g).(bat.Ints)
	if maxv[0] != 50 || maxv[1] != 40 {
		t.Errorf("max = %v", maxv)
	}
}

func TestAggregateFloats(t *testing.T) {
	keys := ints(1, 1)
	vals := bat.Floats{1.5, 2.0}
	g := Group([]bat.Vector{keys}, nil, 2)
	sum := SumGroups(vals, nil, g).(bat.Floats)
	if sum[0] != 3.5 {
		t.Errorf("float sum = %v", sum)
	}
	if got := MinGroups(vals, nil, g).(bat.Floats); got[0] != 1.5 {
		t.Errorf("float min = %v", got)
	}
}

func TestAggregateStringsMinMax(t *testing.T) {
	keys := ints(1, 1, 1)
	vals := bat.Strs{"m", "a", "z"}
	g := Group([]bat.Vector{keys}, nil, 3)
	if got := MinGroups(vals, nil, g).(bat.Strs); got[0] != "a" {
		t.Errorf("string min = %v", got)
	}
	if got := MaxGroups(vals, nil, g).(bat.Strs); got[0] != "z" {
		t.Errorf("string max = %v", got)
	}
}

func TestAggregateDispatch(t *testing.T) {
	keys := ints(1, 1)
	vals := ints(3, 4)
	g := Group([]bat.Vector{keys}, nil, 2)
	if got := Aggregate(AggCount, nil, nil, g).(bat.Ints); got[0] != 2 {
		t.Errorf("dispatch count = %v", got)
	}
	if got := Aggregate(AggSum, vals, nil, g).(bat.Ints); got[0] != 7 {
		t.Errorf("dispatch sum = %v", got)
	}
	if got := Aggregate(AggMin, vals, nil, g).(bat.Ints); got[0] != 3 {
		t.Errorf("dispatch min = %v", got)
	}
	if got := Aggregate(AggMax, vals, nil, g).(bat.Ints); got[0] != 4 {
		t.Errorf("dispatch max = %v", got)
	}
}

func TestMergeAgg(t *testing.T) {
	a, b := ints(1, 5), ints(2, 3)
	if got := MergeAgg(AggSum, a, b).(bat.Ints); got[0] != 3 || got[1] != 8 {
		t.Errorf("merge sum = %v", got)
	}
	if got := MergeAgg(AggCount, a, b).(bat.Ints); got[0] != 3 {
		t.Errorf("merge count = %v", got)
	}
	if got := MergeAgg(AggMin, a, b).(bat.Ints); got[0] != 1 || got[1] != 3 {
		t.Errorf("merge min = %v", got)
	}
	if got := MergeAgg(AggMax, a, b).(bat.Ints); got[0] != 2 || got[1] != 5 {
		t.Errorf("merge max = %v", got)
	}
	fa, fb := bat.Floats{1.5}, bat.Floats{2.5}
	if got := MergeAgg(AggSum, fa, fb).(bat.Floats); got[0] != 4.0 {
		t.Errorf("merge float sum = %v", got)
	}
}

// Property: for random data split at a random point, merging the two
// halves' aggregates equals aggregating the whole — the mergeability
// invariant that incremental window processing relies on.
func TestQuickAggMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(100)
		// Shared keys so both halves see the same groups; the merge rule
		// requires aligned group orders, which the window layer guarantees
		// by re-grouping — here we use a single group to isolate the
		// per-op merge rule.
		vals := make(bat.Ints, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000) - 500)
		}
		cut := 1 + rng.Intn(n-1)
		whole := Group(nil, nil, n)
		left := Group(nil, nil, cut)
		right := Group(nil, nil, n-cut)
		lv, rv := vals[:cut], vals[cut:]
		for _, op := range []AggOp{AggSum, AggMin, AggMax} {
			want := Aggregate(op, vals, nil, whole).Get(0)
			la := Aggregate(op, lv, nil, left)
			ra := Aggregate(op, rv, nil, right)
			got := MergeAgg(op, la, ra).Get(0)
			if !got.Equal(want) {
				t.Fatalf("iter %d op %s: merged %v != whole %v", iter, op, got, want)
			}
		}
		lc := Aggregate(AggCount, nil, nil, left)
		rc := Aggregate(AggCount, nil, nil, right)
		if got := MergeAgg(AggCount, lc, rc).Get(0).I; got != int64(n) {
			t.Fatalf("iter %d: merged count %d != %d", iter, got, n)
		}
	}
}

func TestOrder(t *testing.T) {
	v := ints(3, 1, 2)
	idx := Order([]SortKey{{Col: v}}, nil, 3)
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Errorf("asc order = %v", idx)
	}
	idx = Order([]SortKey{{Col: v, Desc: true}}, nil, 3)
	if idx[0] != 0 || idx[2] != 1 {
		t.Errorf("desc order = %v", idx)
	}
}

func TestOrderMultiKeyStable(t *testing.T) {
	a := ints(1, 1, 2, 1)
	b := bat.Strs{"b", "a", "z", "a"}
	idx := Order([]SortKey{{Col: a}, {Col: b}}, nil, 4)
	// (1,a)@1, (1,a)@3 (stable), (1,b)@0, (2,z)@2
	want := []int32{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("multi-key order = %v, want %v", idx, want)
		}
	}
}

func TestOrderNoKeysAndCandidates(t *testing.T) {
	idx := Order(nil, Sel{2, 0}, 3)
	if len(idx) != 2 || idx[0] != 2 {
		t.Errorf("no-key order = %v", idx)
	}
}

func TestTopN(t *testing.T) {
	v := ints(5, 1, 4, 2)
	idx := TopN([]SortKey{{Col: v}}, nil, 4, 2)
	if len(idx) != 2 || v[idx[0]] != 1 || v[idx[1]] != 2 {
		t.Errorf("TopN = %v", idx)
	}
	if got := TopN([]SortKey{{Col: v}}, nil, 4, 10); len(got) != 4 {
		t.Errorf("TopN over-limit = %v", got)
	}
}

func TestOrderFloatsBoolsTimes(t *testing.T) {
	f := bat.Floats{2.5, 1.5}
	if idx := Order([]SortKey{{Col: f}}, nil, 2); idx[0] != 1 {
		t.Errorf("float order = %v", idx)
	}
	b := bat.Bools{true, false}
	if idx := Order([]SortKey{{Col: b}}, nil, 2); idx[0] != 1 {
		t.Errorf("bool order = %v", idx)
	}
	tm := bat.Times{20, 10}
	if idx := Order([]SortKey{{Col: tm}}, nil, 2); idx[0] != 1 {
		t.Errorf("time order = %v", idx)
	}
}
