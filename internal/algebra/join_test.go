package algebra

import (
	"math/rand"
	"testing"

	"datacell/internal/bat"
)

func TestHashJoinInt(t *testing.T) {
	l := ints(1, 2, 3, 2)
	r := ints(2, 4, 2)
	lout, rout := HashJoin([]bat.Vector{l}, []bat.Vector{r}, nil, nil)
	// l rows 1 and 3 (value 2) each match r rows 0 and 2.
	if len(lout) != 4 {
		t.Fatalf("match count = %d, want 4", len(lout))
	}
	for k := range lout {
		if l[lout[k]] != r[rout[k]] {
			t.Errorf("pair %d: %d != %d", k, l[lout[k]], r[rout[k]])
		}
	}
}

func TestHashJoinStr(t *testing.T) {
	l := bat.Strs{"a", "b"}
	r := bat.Strs{"b", "b", "c"}
	lout, rout := HashJoin([]bat.Vector{l}, []bat.Vector{r}, nil, nil)
	if len(lout) != 2 {
		t.Fatalf("match count = %d, want 2", len(lout))
	}
	for k := range lout {
		if l[lout[k]] != r[rout[k]] {
			t.Errorf("pair %d mismatched", k)
		}
	}
}

func TestHashJoinComposite(t *testing.T) {
	l1, l2 := ints(1, 1, 2), bat.Strs{"x", "y", "x"}
	r1, r2 := ints(1, 2), bat.Strs{"x", "x"}
	lout, rout := HashJoin(
		[]bat.Vector{l1, l2}, []bat.Vector{r1, r2}, nil, nil)
	if len(lout) != 2 {
		t.Fatalf("match count = %d, want 2", len(lout))
	}
	for k := range lout {
		if l1[lout[k]] != r1[rout[k]] || l2[lout[k]] != r2[rout[k]] {
			t.Errorf("pair %d mismatched", k)
		}
	}
}

func TestHashJoinWithCandidates(t *testing.T) {
	l := ints(1, 2, 3)
	r := ints(1, 2, 3)
	lout, rout := HashJoin([]bat.Vector{l}, []bat.Vector{r}, Sel{0, 1}, Sel{1, 2})
	if len(lout) != 1 || l[lout[0]] != 2 || r[rout[0]] != 2 {
		t.Errorf("candidate-restricted join = %v/%v", lout, rout)
	}
}

func TestHashJoinFloatKeys(t *testing.T) {
	l := bat.Floats{1.5, 2.5}
	r := bat.Floats{2.5}
	lout, rout := HashJoin([]bat.Vector{l}, []bat.Vector{r}, nil, nil)
	if len(lout) != 1 || lout[0] != 1 || rout[0] != 0 {
		t.Errorf("float join = %v/%v", lout, rout)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	l := ints(1, 2, 3)
	r := ints(2, 3)
	lout, rout := NestedLoopJoin(3, 2, nil, nil, func(i, j int32) bool {
		return l[i] < r[j]
	})
	if len(lout) != 3 { // (1,2) (1,3) (2,3)
		t.Fatalf("non-equi matches = %d, want 3", len(lout))
	}
	_ = rout
}

// Property: HashJoin ≡ NestedLoopJoin with equality predicate, as sets of
// pairs.
func TestQuickHashJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		ln, rn := rng.Intn(30), rng.Intn(30)
		l := make(bat.Ints, ln)
		r := make(bat.Ints, rn)
		for i := range l {
			l[i] = int64(rng.Intn(8))
		}
		for i := range r {
			r[i] = int64(rng.Intn(8))
		}
		hl, hr := HashJoin([]bat.Vector{l}, []bat.Vector{r}, nil, nil)
		nl, nr := NestedLoopJoin(ln, rn, nil, nil, func(i, j int32) bool {
			return l[i] == r[j]
		})
		if len(hl) != len(nl) {
			t.Fatalf("iter %d: hash %d pairs, nested %d pairs", iter, len(hl), len(nl))
		}
		pairs := make(map[[2]int32]int)
		for k := range hl {
			pairs[[2]int32{hl[k], hr[k]}]++
		}
		for k := range nl {
			pairs[[2]int32{nl[k], nr[k]}]--
		}
		for p, c := range pairs {
			if c != 0 {
				t.Fatalf("iter %d: pair %v count diff %d", iter, p, c)
			}
		}
	}
}

func TestFetch(t *testing.T) {
	v := ints(10, 20, 30, 40)
	got := Fetch(v, Sel{3, 1})
	if got.Len() != 2 || got.Get(0).I != 40 || got.Get(1).I != 20 {
		t.Errorf("Fetch = %v", bat.VectorString(got))
	}
	if Fetch(v, nil).Len() != 4 {
		t.Error("Fetch nil sel should be identity")
	}
	s := Fetch(bat.Strs{"a", "b"}, Sel{1})
	if s.Get(0).S != "b" {
		t.Errorf("Fetch strs = %v", bat.VectorString(s))
	}
	bl := Fetch(bat.Bools{true, false}, Sel{1})
	if bl.Get(0).B {
		t.Error("Fetch bools wrong")
	}
	tm := Fetch(bat.Times{5, 6}, Sel{0})
	if tm.Kind() != bat.Time || tm.Get(0).I != 5 {
		t.Error("Fetch times wrong")
	}
	fl := Fetch(bat.Floats{1.5, 2.5}, Sel{0})
	if fl.Get(0).F != 1.5 {
		t.Error("Fetch floats wrong")
	}
}

func TestFetchChunk(t *testing.T) {
	sch := bat.NewSchema([]string{"a", "b"}, []bat.Kind{bat.Int, bat.Str})
	c := bat.NewChunk(sch)
	_ = c.AppendRow(bat.IntValue(1), bat.StrValue("x"))
	_ = c.AppendRow(bat.IntValue(2), bat.StrValue("y"))
	got := FetchChunk(c, Sel{1})
	if got.Rows() != 1 || got.Row(0)[1].S != "y" {
		t.Errorf("FetchChunk = %v", got)
	}
	if FetchChunk(c, nil) != c {
		t.Error("FetchChunk nil sel should be identity")
	}
}

func TestGatherNilMeansEmpty(t *testing.T) {
	// Regression: a zero-match join produces nil index lists; Gather must
	// return an empty vector, not the whole input (Fetch's nil-candidate
	// convention).
	v := ints(1, 2, 3)
	if got := Gather(v, nil); got.Len() != 0 {
		t.Errorf("Gather(nil) = %d rows, want 0", got.Len())
	}
	if got := Gather(v, []int32{2, 0, 2}); got.Len() != 3 || got.Get(0).I != 3 {
		t.Errorf("Gather = %v", bat.VectorString(got))
	}
}
