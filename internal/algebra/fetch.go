package algebra

import (
	"fmt"

	"datacell/internal/bat"
)

// Fetch performs late tuple reconstruction: it gathers the values of v at
// the positions of the candidate list, producing a dense vector. This is
// MonetDB's positional fetch-join against a void head — the operation that
// lets select operators work on one column at a time and reconstruct the
// other attributes only when needed.
func Fetch(v bat.Vector, sel Sel) bat.Vector {
	if sel == nil {
		return v
	}
	switch xs := v.(type) {
	case bat.Ints:
		return bat.Ints(fetch(xs, sel))
	case bat.Times:
		return bat.Times(fetch(xs, sel))
	case bat.Floats:
		return bat.Floats(fetch(xs, sel))
	case bat.Strs:
		return bat.Strs(fetch(xs, sel))
	case bat.Bools:
		return bat.Bools(fetch(xs, sel))
	}
	panic(fmt.Sprintf("algebra: Fetch on unknown vector %T", v))
}

func fetch[T any](xs []T, sel Sel) []T {
	out := make([]T, len(sel))
	for k, i := range sel {
		out[k] = xs[i]
	}
	return out
}

// FetchChunk reconstructs every column of a chunk at the given candidate
// list.
func FetchChunk(c *bat.Chunk, sel Sel) *bat.Chunk {
	if sel == nil {
		return c
	}
	cols := make([]bat.Vector, len(c.Cols))
	for i, col := range c.Cols {
		cols[i] = Fetch(col, sel)
	}
	return &bat.Chunk{Schema: c.Schema, Cols: cols}
}

// Gather is Fetch with an int32 index list that may repeat or be unsorted
// (join results, sort orders). Unlike Fetch's candidate-list convention, a
// nil index list means "no rows" — a zero-match join yields an empty
// result, not the whole input.
func Gather(v bat.Vector, idx []int32) bat.Vector {
	if idx == nil {
		idx = []int32{}
	}
	return Fetch(v, Sel(idx))
}
