package algebra

import (
	"datacell/internal/bat"
)

// Grouping is the result of a Group call: a dense group id per qualifying
// input row, the number of groups, and one representative input position
// per group (in first-appearance order), from which the key columns can be
// reconstructed with Fetch.
type Grouping struct {
	// GIDs[k] is the group of the k-th qualifying row (the k-th row of
	// sel, or row k if sel is nil).
	GIDs []int32
	// N is the number of distinct groups.
	N int
	// Repr[g] is the input position of the first row of group g.
	Repr Sel
}

// Group computes a dense grouping of the rows covered by sel over one or
// more key columns. With no key columns it returns a single group covering
// all rows (the SQL "aggregate without GROUP BY" case), or zero groups if
// the input is empty.
func Group(keys []bat.Vector, sel Sel, n int) Grouping {
	return GroupHint(keys, sel, n, defaultGroupHint)
}

// defaultGroupHint is the historical fixed capacity of the grouping hash
// tables — the pre-sizing baseline when no cardinality estimate exists.
const defaultGroupHint = 64

// GroupHint is Group with an explicit hash-table capacity hint, fed by
// observed per-window group cardinality (the factory remembers each
// pipeline's last output size). The hint only pre-sizes the group-id map —
// group ids, representatives and ordering are identical for every hint, so
// callers may pass any non-negative estimate without affecting results.
func GroupHint(keys []bat.Vector, sel Sel, n, hint int) Grouping {
	rows := SelLen(sel, n)
	if hint <= 0 {
		hint = defaultGroupHint
	}
	if len(keys) == 0 {
		g := Grouping{GIDs: make([]int32, rows)}
		if rows > 0 {
			g.N = 1
			g.Repr = Sel{firstPos(sel)}
		}
		return g
	}
	if len(keys) == 1 {
		if isIntKind(keys[0]) {
			return groupInt(bat.AsInts(keys[0]), sel, rows, hint)
		}
		if xs, ok := keys[0].(bat.Strs); ok {
			return groupStr(xs, sel, rows, hint)
		}
	}
	return groupComposite(keys, sel, rows, hint)
}

func firstPos(sel Sel) int32 {
	if sel == nil {
		return 0
	}
	return sel[0]
}

func groupInt(xs []int64, sel Sel, rows, hint int) Grouping {
	g := Grouping{GIDs: make([]int32, 0, rows)}
	ids := make(map[int64]int32, hint)
	eachSel(xs, sel, func(i int32, x int64) {
		id, ok := ids[x]
		if !ok {
			id = int32(g.N)
			ids[x] = id
			g.N++
			g.Repr = append(g.Repr, i)
		}
		g.GIDs = append(g.GIDs, id)
	})
	return g
}

func groupStr(xs []string, sel Sel, rows, hint int) Grouping {
	g := Grouping{GIDs: make([]int32, 0, rows)}
	ids := make(map[string]int32, hint)
	eachSel(xs, sel, func(i int32, x string) {
		id, ok := ids[x]
		if !ok {
			id = int32(g.N)
			ids[x] = id
			g.N++
			g.Repr = append(g.Repr, i)
		}
		g.GIDs = append(g.GIDs, id)
	})
	return g
}

func groupComposite(keys []bat.Vector, sel Sel, rows, hint int) Grouping {
	g := Grouping{GIDs: make([]int32, 0, rows)}
	ids := make(map[string]int32, hint)
	var buf []byte
	n := keys[0].Len()
	forSel(sel, n, func(i int32) {
		buf = encodeKey(buf[:0], keys, i)
		id, ok := ids[string(buf)]
		if !ok {
			id = int32(g.N)
			ids[string(buf)] = id
			g.N++
			g.Repr = append(g.Repr, i)
		}
		g.GIDs = append(g.GIDs, id)
	})
	return g
}
