package algebra

import (
	"fmt"

	"datacell/internal/bat"
)

// AggOp identifies an aggregate function. AVG is not listed: the planner
// rewrites avg(x) into sum(x)/count(x) so that every aggregate state is
// mergeable across basic windows, the property the paper's incremental
// sliding-window processing depends on (partials per basic window are
// merged; whole basic windows expire at once, so min/max need no
// invertibility).
type AggOp uint8

// The mergeable aggregate operators.
const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
)

// String renders the SQL name.
func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "agg?"
}

// CountGroups counts qualifying rows per group.
func CountGroups(g Grouping) bat.Ints {
	out := make(bat.Ints, g.N)
	for _, gid := range g.GIDs {
		out[gid]++
	}
	return out
}

// SumGroups sums a value column per group. Int and Time inputs produce an
// Int sum; Float inputs a Float sum.
func SumGroups(v bat.Vector, sel Sel, g Grouping) bat.Vector {
	switch xs := v.(type) {
	case bat.Ints:
		return sumInt(xs, sel, g)
	case bat.Times:
		return sumInt(bat.AsInts(v), sel, g)
	case bat.Floats:
		out := make(bat.Floats, g.N)
		k := 0
		eachSel(xs, sel, func(_ int32, x float64) {
			out[g.GIDs[k]] += x
			k++
		})
		return out
	}
	panic(fmt.Sprintf("algebra: SumGroups on %s vector", v.Kind()))
}

func sumInt(xs []int64, sel Sel, g Grouping) bat.Ints {
	out := make(bat.Ints, g.N)
	k := 0
	eachSel(xs, sel, func(_ int32, x int64) {
		out[g.GIDs[k]] += x
		k++
	})
	return out
}

// MinGroups computes the per-group minimum of a value column.
func MinGroups(v bat.Vector, sel Sel, g Grouping) bat.Vector {
	return extremeGroups(v, sel, g, true)
}

// MaxGroups computes the per-group maximum of a value column.
func MaxGroups(v bat.Vector, sel Sel, g Grouping) bat.Vector {
	return extremeGroups(v, sel, g, false)
}

func extremeGroups(v bat.Vector, sel Sel, g Grouping, isMin bool) bat.Vector {
	switch xs := v.(type) {
	case bat.Ints:
		return bat.Ints(extreme(xs, sel, g, isMin))
	case bat.Times:
		return bat.Times(extreme(bat.AsInts(v), sel, g, isMin))
	case bat.Floats:
		return bat.Floats(extreme(xs, sel, g, isMin))
	case bat.Strs:
		return bat.Strs(extreme(xs, sel, g, isMin))
	}
	panic(fmt.Sprintf("algebra: min/max on %s vector", v.Kind()))
}

func extreme[T int64 | float64 | string](xs []T, sel Sel, g Grouping, isMin bool) []T {
	out := make([]T, g.N)
	seen := make([]bool, g.N)
	k := 0
	eachSel(xs, sel, func(_ int32, x T) {
		gid := g.GIDs[k]
		k++
		if !seen[gid] {
			out[gid] = x
			seen[gid] = true
			return
		}
		if isMin {
			if x < out[gid] {
				out[gid] = x
			}
		} else if x > out[gid] {
			out[gid] = x
		}
	})
	return out
}

// Aggregate applies one aggregate op to a value column under a grouping.
// For AggCount, v may be nil (count(*)).
func Aggregate(op AggOp, v bat.Vector, sel Sel, g Grouping) bat.Vector {
	switch op {
	case AggCount:
		return CountGroups(g)
	case AggSum:
		return SumGroups(v, sel, g)
	case AggMin:
		return MinGroups(v, sel, g)
	case AggMax:
		return MaxGroups(v, sel, g)
	}
	panic("algebra: unknown aggregate")
}

// MergeAgg combines two already-aggregated vectors element-wise according
// to the aggregate's merge rule (count/sum add; min/max take extremes).
// Both inputs are per-group results aligned on the same group order. It is
// used by the window merge stage when combining cached basic-window
// partials.
func MergeAgg(op AggOp, a, b bat.Vector) bat.Vector {
	switch op {
	case AggCount, AggSum:
		return addVec(a, b)
	case AggMin:
		return extremeVec(a, b, true)
	case AggMax:
		return extremeVec(a, b, false)
	}
	panic("algebra: unknown aggregate merge")
}

func addVec(a, b bat.Vector) bat.Vector {
	switch xs := a.(type) {
	case bat.Ints:
		ys := b.(bat.Ints)
		out := make(bat.Ints, len(xs))
		for i := range xs {
			out[i] = xs[i] + ys[i]
		}
		return out
	case bat.Floats:
		ys := b.(bat.Floats)
		out := make(bat.Floats, len(xs))
		for i := range xs {
			out[i] = xs[i] + ys[i]
		}
		return out
	}
	panic(fmt.Sprintf("algebra: MergeAgg add on %s", a.Kind()))
}

func extremeVec(a, b bat.Vector, isMin bool) bat.Vector {
	pick := func(cmp int) bool {
		if isMin {
			return cmp <= 0
		}
		return cmp >= 0
	}
	out := a.New(a.Len())
	for i := 0; i < a.Len(); i++ {
		va, vb := a.Get(i), b.Get(i)
		if pick(va.Compare(vb)) {
			out = out.Append(va)
		} else {
			out = out.Append(vb)
		}
	}
	return out
}
