package algebra

import (
	"encoding/binary"
	"math"

	"datacell/internal/bat"
)

// HashJoin computes the equi-join of two sides over one or more key
// columns. It returns parallel index lists (lout, rout): row lout[k] of the
// left side matches row rout[k] of the right side. Candidate lists restrict
// each side. The build side is the right side; callers put the smaller
// input on the right.
//
// Keys of Int/Time kind use a fast single-column path; everything else goes
// through a composite binary key encoding.
func HashJoin(lkeys, rkeys []bat.Vector, lsel, rsel Sel) (lout, rout []int32) {
	if len(lkeys) != len(rkeys) || len(lkeys) == 0 {
		panic("algebra: HashJoin key arity mismatch")
	}
	if len(lkeys) == 1 {
		if isIntKind(lkeys[0]) && isIntKind(rkeys[0]) {
			return hashJoinInt(bat.AsInts(lkeys[0]), bat.AsInts(rkeys[0]), lsel, rsel)
		}
		if ls, ok := lkeys[0].(bat.Strs); ok {
			if rs, ok := rkeys[0].(bat.Strs); ok {
				return hashJoinStr(ls, rs, lsel, rsel)
			}
		}
	}
	return hashJoinComposite(lkeys, rkeys, lsel, rsel)
}

func isIntKind(v bat.Vector) bool {
	k := v.Kind()
	return k == bat.Int || k == bat.Time
}

func hashJoinInt(l, r []int64, lsel, rsel Sel) (lout, rout []int32) {
	ht := make(map[int64][]int32, SelLen(rsel, len(r)))
	eachSel(r, rsel, func(i int32, x int64) {
		ht[x] = append(ht[x], i)
	})
	eachSel(l, lsel, func(i int32, x int64) {
		for _, j := range ht[x] {
			lout = append(lout, i)
			rout = append(rout, j)
		}
	})
	return lout, rout
}

func hashJoinStr(l, r []string, lsel, rsel Sel) (lout, rout []int32) {
	ht := make(map[string][]int32, SelLen(rsel, len(r)))
	eachSel(r, rsel, func(i int32, x string) {
		ht[x] = append(ht[x], i)
	})
	eachSel(l, lsel, func(i int32, x string) {
		for _, j := range ht[x] {
			lout = append(lout, i)
			rout = append(rout, j)
		}
	})
	return lout, rout
}

func hashJoinComposite(lkeys, rkeys []bat.Vector, lsel, rsel Sel) (lout, rout []int32) {
	ht := make(map[string][]int32)
	var buf []byte
	rn := rkeys[0].Len()
	forSel(rsel, rn, func(i int32) {
		buf = encodeKey(buf[:0], rkeys, i)
		ht[string(buf)] = append(ht[string(buf)], i)
	})
	ln := lkeys[0].Len()
	forSel(lsel, ln, func(i int32) {
		buf = encodeKey(buf[:0], lkeys, i)
		for _, j := range ht[string(buf)] {
			lout = append(lout, i)
			rout = append(rout, j)
		}
	})
	return lout, rout
}

// forSel iterates positions of a candidate list over n rows (nil = all).
func forSel(sel Sel, n int, f func(i int32)) {
	if sel == nil {
		for i := int32(0); i < int32(n); i++ {
			f(i)
		}
		return
	}
	for _, i := range sel {
		f(i)
	}
}

// encodeKey appends a self-delimiting binary encoding of row i of the key
// columns, usable as a hash map key. Numeric values encode fixed-width;
// strings length-prefixed.
func encodeKey(buf []byte, keys []bat.Vector, i int32) []byte {
	var tmp [8]byte
	for _, k := range keys {
		switch xs := k.(type) {
		case bat.Ints:
			binary.LittleEndian.PutUint64(tmp[:], uint64(xs[i]))
			buf = append(buf, tmp[:]...)
		case bat.Times:
			binary.LittleEndian.PutUint64(tmp[:], uint64(xs[i]))
			buf = append(buf, tmp[:]...)
		case bat.Floats:
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(xs[i]))
			buf = append(buf, tmp[:]...)
		case bat.Strs:
			binary.LittleEndian.PutUint64(tmp[:], uint64(len(xs[i])))
			buf = append(buf, tmp[:]...)
			buf = append(buf, xs[i]...)
		case bat.Bools:
			if xs[i] {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// NestedLoopJoin is the naive reference join used by tests and as the
// fallback for non-equi predicates: it emits every (l, r) pair for which
// pred returns true.
func NestedLoopJoin(ln, rn int, lsel, rsel Sel, pred func(l, r int32) bool) (lout, rout []int32) {
	forSel(lsel, ln, func(i int32) {
		forSel(rsel, rn, func(j int32) {
			if pred(i, j) {
				lout = append(lout, i)
				rout = append(rout, j)
			}
		})
	})
	return lout, rout
}
