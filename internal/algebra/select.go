// Package algebra implements the bulk (vector-at-a-time) relational
// operators of the DataCell-Go kernel, mirroring the MonetDB columnar
// algebra the paper builds on: operators consume whole column vectors plus
// an optional candidate list and produce new vectors or candidate lists.
//
// A candidate list (Sel) is a sorted list of qualifying row positions — the
// columnar intermediate that the paper's incremental processing strategy
// caches and reuses ("we can selectively keep around the proper
// intermediates at the proper places of a plan").
package algebra

import (
	"fmt"

	"datacell/internal/bat"
)

// Sel is a candidate list: strictly increasing positions into a vector.
// A nil Sel means "all rows". Positions are int32, as dense selection
// vectors are the cache-resident intermediate of choice in columnar
// engines.
type Sel []int32

// AllSel materializes the identity candidate list [0, n).
func AllSel(n int) Sel {
	s := make(Sel, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// SelLen reports how many rows a candidate list covers over a vector of n
// rows (nil means all).
func SelLen(sel Sel, n int) int {
	if sel == nil {
		return n
	}
	return len(sel)
}

// CmpOp is a comparison operator for selections and join predicates.
type CmpOp uint8

// The comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the SQL form of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Select filters a vector with a single comparison against a constant and
// returns the qualifying candidate list, intersected with sel.
func Select(v bat.Vector, sel Sel, op CmpOp, c bat.Value) Sel {
	switch xs := v.(type) {
	case bat.Ints:
		return selectCmp(xs, sel, op, c.AsInt())
	case bat.Times:
		return selectCmp(xs, sel, op, c.AsInt())
	case bat.Floats:
		return selectCmp(xs, sel, op, c.AsFloat())
	case bat.Strs:
		return selectCmp(xs, sel, op, c.S)
	case bat.Bools:
		return selectBool(xs, sel, op, c.B)
	}
	panic(fmt.Sprintf("algebra: Select on unknown vector %T", v))
}

// SelectRange filters v to lo <= x <= hi (bounds optional, inclusivity
// configurable), in one pass — the MonetDB theta-select. Nil bounds are
// open.
func SelectRange(v bat.Vector, sel Sel, lo, hi *bat.Value, loIncl, hiIncl bool) Sel {
	switch xs := v.(type) {
	case bat.Ints:
		return selectRange(xs, sel, intBound(lo), intBound(hi), loIncl, hiIncl, lo != nil, hi != nil)
	case bat.Times:
		return selectRange(xs, sel, intBound(lo), intBound(hi), loIncl, hiIncl, lo != nil, hi != nil)
	case bat.Floats:
		return selectRange(xs, sel, floatBound(lo), floatBound(hi), loIncl, hiIncl, lo != nil, hi != nil)
	case bat.Strs:
		return selectRange(xs, sel, strBound(lo), strBound(hi), loIncl, hiIncl, lo != nil, hi != nil)
	}
	panic(fmt.Sprintf("algebra: SelectRange on %s vector", v.Kind()))
}

func intBound(v *bat.Value) int64 {
	if v == nil {
		return 0
	}
	return v.AsInt()
}

func floatBound(v *bat.Value) float64 {
	if v == nil {
		return 0
	}
	return v.AsFloat()
}

func strBound(v *bat.Value) string {
	if v == nil {
		return ""
	}
	return v.S
}

// selectCmp is the generic single-comparison kernel. The comparison
// operator is hoisted out of the loop (one loop per op) so the inner loops
// stay branch-predictable, in the bulk-processing style the paper relies
// on.
func selectCmp[T int64 | float64 | string](xs []T, sel Sel, op CmpOp, c T) Sel {
	out := make(Sel, 0, SelLen(sel, len(xs))/4+4)
	push := func(i int32) { out = append(out, i) }
	switch op {
	case EQ:
		eachSel(xs, sel, func(i int32, x T) {
			if x == c {
				push(i)
			}
		})
	case NE:
		eachSel(xs, sel, func(i int32, x T) {
			if x != c {
				push(i)
			}
		})
	case LT:
		eachSel(xs, sel, func(i int32, x T) {
			if x < c {
				push(i)
			}
		})
	case LE:
		eachSel(xs, sel, func(i int32, x T) {
			if x <= c {
				push(i)
			}
		})
	case GT:
		eachSel(xs, sel, func(i int32, x T) {
			if x > c {
				push(i)
			}
		})
	case GE:
		eachSel(xs, sel, func(i int32, x T) {
			if x >= c {
				push(i)
			}
		})
	}
	return out
}

func selectBool(xs []bool, sel Sel, op CmpOp, c bool) Sel {
	out := make(Sel, 0, 8)
	eachSel(xs, sel, func(i int32, x bool) {
		keep := false
		switch op {
		case EQ:
			keep = x == c
		case NE:
			keep = x != c
		default:
			// Ordered comparisons on booleans use false < true.
			bi, ci := b2i(x), b2i(c)
			switch op {
			case LT:
				keep = bi < ci
			case LE:
				keep = bi <= ci
			case GT:
				keep = bi > ci
			case GE:
				keep = bi >= ci
			}
		}
		if keep {
			out = append(out, i)
		}
	})
	return out
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func selectRange[T int64 | float64 | string](xs []T, sel Sel, lo, hi T, loIncl, hiIncl, hasLo, hasHi bool) Sel {
	out := make(Sel, 0, SelLen(sel, len(xs))/4+4)
	eachSel(xs, sel, func(i int32, x T) {
		if hasLo {
			if loIncl {
				if x < lo {
					return
				}
			} else if x <= lo {
				return
			}
		}
		if hasHi {
			if hiIncl {
				if x > hi {
					return
				}
			} else if x >= hi {
				return
			}
		}
		out = append(out, i)
	})
	return out
}

// eachSel iterates a slice restricted to a candidate list.
func eachSel[T any](xs []T, sel Sel, f func(i int32, x T)) {
	if sel == nil {
		for i, x := range xs {
			f(int32(i), x)
		}
		return
	}
	for _, i := range sel {
		f(i, xs[i])
	}
}

// SelIntersect intersects two sorted candidate lists (nil = all).
func SelIntersect(a, b Sel) Sel {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Sel, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SelUnion merges two sorted candidate lists (nil = all rows, which
// dominates).
func SelUnion(a, b Sel, n int) Sel {
	if a == nil || b == nil {
		return nil
	}
	out := make(Sel, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SelComplement returns all positions in [0, n) not present in sorted a.
func SelComplement(a Sel, n int) Sel {
	if a == nil {
		return Sel{}
	}
	out := make(Sel, 0, n-len(a))
	j := 0
	for i := int32(0); i < int32(n); i++ {
		if j < len(a) && a[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}
