package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datacell/internal/bat"
)

func ints(xs ...int64) bat.Ints { return bat.Ints(xs) }

func selEqual(a, b Sel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectOps(t *testing.T) {
	v := ints(5, 1, 9, 5, 3)
	cases := []struct {
		op   CmpOp
		c    int64
		want Sel
	}{
		{EQ, 5, Sel{0, 3}},
		{NE, 5, Sel{1, 2, 4}},
		{LT, 5, Sel{1, 4}},
		{LE, 5, Sel{0, 1, 3, 4}},
		{GT, 5, Sel{2}},
		{GE, 5, Sel{0, 2, 3}},
	}
	for _, c := range cases {
		got := Select(v, nil, c.op, bat.IntValue(c.c))
		if !selEqual(got, c.want) {
			t.Errorf("Select %s %d = %v, want %v", c.op, c.c, got, c.want)
		}
	}
}

func TestSelectWithCandidates(t *testing.T) {
	v := ints(5, 1, 9, 5, 3)
	got := Select(v, Sel{0, 2, 4}, GE, bat.IntValue(4))
	if !selEqual(got, Sel{0, 2}) {
		t.Errorf("Select with candidates = %v", got)
	}
}

func TestSelectFloatsStrsBools(t *testing.T) {
	f := bat.Floats{1.5, 2.5, 3.5}
	if got := Select(f, nil, GT, bat.FloatValue(2.0)); !selEqual(got, Sel{1, 2}) {
		t.Errorf("float select = %v", got)
	}
	s := bat.Strs{"b", "a", "c"}
	if got := Select(s, nil, LE, bat.StrValue("b")); !selEqual(got, Sel{0, 1}) {
		t.Errorf("string select = %v", got)
	}
	b := bat.Bools{true, false, true}
	if got := Select(b, nil, EQ, bat.BoolValue(true)); !selEqual(got, Sel{0, 2}) {
		t.Errorf("bool select = %v", got)
	}
	if got := Select(b, nil, NE, bat.BoolValue(true)); !selEqual(got, Sel{1}) {
		t.Errorf("bool NE select = %v", got)
	}
	if got := Select(b, nil, LT, bat.BoolValue(true)); !selEqual(got, Sel{1}) {
		t.Errorf("bool LT select = %v", got)
	}
}

func TestSelectTimes(t *testing.T) {
	v := bat.Times{100, 200, 300}
	if got := Select(v, nil, GE, bat.TimeValue(200)); !selEqual(got, Sel{1, 2}) {
		t.Errorf("time select = %v", got)
	}
}

func TestSelectRange(t *testing.T) {
	v := ints(1, 2, 3, 4, 5)
	lo, hi := bat.IntValue(2), bat.IntValue(4)
	if got := SelectRange(v, nil, &lo, &hi, true, true); !selEqual(got, Sel{1, 2, 3}) {
		t.Errorf("closed range = %v", got)
	}
	if got := SelectRange(v, nil, &lo, &hi, false, false); !selEqual(got, Sel{2}) {
		t.Errorf("open range = %v", got)
	}
	if got := SelectRange(v, nil, &lo, nil, true, true); !selEqual(got, Sel{1, 2, 3, 4}) {
		t.Errorf("lower-only range = %v", got)
	}
	if got := SelectRange(v, nil, nil, &hi, true, false); !selEqual(got, Sel{0, 1, 2}) {
		t.Errorf("upper-only range = %v", got)
	}
}

func TestSelSetOps(t *testing.T) {
	a, b := Sel{1, 3, 5}, Sel{3, 4, 5, 7}
	if got := SelIntersect(a, b); !selEqual(got, Sel{3, 5}) {
		t.Errorf("intersect = %v", got)
	}
	if got := SelIntersect(nil, b); !selEqual(got, b) {
		t.Errorf("intersect nil = %v", got)
	}
	if got := SelUnion(a, b, 8); !selEqual(got, Sel{1, 3, 4, 5, 7}) {
		t.Errorf("union = %v", got)
	}
	if got := SelUnion(a, nil, 8); got != nil {
		t.Errorf("union with nil should be nil (all), got %v", got)
	}
	if got := SelComplement(a, 6); !selEqual(got, Sel{0, 2, 4}) {
		t.Errorf("complement = %v", got)
	}
	if got := SelComplement(nil, 3); len(got) != 0 {
		t.Errorf("complement of all = %v", got)
	}
}

func TestAllSelAndSelLen(t *testing.T) {
	if got := AllSel(3); !selEqual(got, Sel{0, 1, 2}) {
		t.Errorf("AllSel = %v", got)
	}
	if SelLen(nil, 7) != 7 || SelLen(Sel{1}, 7) != 1 {
		t.Error("SelLen wrong")
	}
}

// naiveSelect is the row-at-a-time reference.
func naiveSelect(xs []int64, op CmpOp, c int64) Sel {
	var out Sel
	for i, x := range xs {
		keep := false
		switch op {
		case EQ:
			keep = x == c
		case NE:
			keep = x != c
		case LT:
			keep = x < c
		case LE:
			keep = x <= c
		case GT:
			keep = x > c
		case GE:
			keep = x >= c
		}
		if keep {
			out = append(out, int32(i))
		}
	}
	if out == nil {
		out = Sel{}
	}
	return out
}

// Property: bulk Select ≡ naive row-at-a-time select for every operator.
func TestQuickSelectMatchesNaive(t *testing.T) {
	f := func(xs []int64, c int64, opRaw uint8) bool {
		op := CmpOp(opRaw % 6)
		// Shrink the domain so matches actually occur.
		for i := range xs {
			xs[i] %= 16
		}
		c %= 16
		got := Select(bat.Ints(xs), nil, op, bat.IntValue(c))
		want := naiveSelect(xs, op, c)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return selEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: SelectRange ≡ composing two Selects.
func TestQuickSelectRangeMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(50)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(20))
		}
		lo := bat.IntValue(int64(rng.Intn(20)))
		hi := bat.IntValue(lo.I + int64(rng.Intn(10)))
		v := bat.Ints(xs)
		got := SelectRange(v, nil, &lo, &hi, true, true)
		want := SelIntersect(
			Select(v, nil, GE, lo),
			Select(v, nil, LE, hi),
		)
		if !selEqual(got, want) {
			t.Fatalf("iter %d: range=%v composed=%v xs=%v lo=%v hi=%v",
				iter, got, want, xs, lo, hi)
		}
	}
}
