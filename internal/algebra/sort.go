package algebra

import (
	"sort"

	"datacell/internal/bat"
)

// SortKey describes one ORDER BY key: the column vector and direction.
type SortKey struct {
	Col  bat.Vector
	Desc bool
}

// Order returns the positions covered by sel, stably ordered by the sort
// keys (first key most significant). The result is an index list usable
// with Gather; it is not a candidate list, since it is not ascending.
func Order(keys []SortKey, sel Sel, n int) []int32 {
	idx := make([]int32, 0, SelLen(sel, n))
	forSel(sel, n, func(i int32) { idx = append(idx, i) })
	if len(keys) == 0 {
		return idx
	}
	cmps := make([]func(a, b int32) int, len(keys))
	for k, key := range keys {
		cmps[k] = comparator(key.Col, key.Desc)
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for _, cmp := range cmps {
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return idx
}

// comparator builds a per-column positional comparator with the type
// switch hoisted out of the sort loop.
func comparator(v bat.Vector, desc bool) func(a, b int32) int {
	var cmp func(a, b int32) int
	switch xs := v.(type) {
	case bat.Ints:
		cmp = func(a, b int32) int { return cmpOrd(xs[a], xs[b]) }
	case bat.Times:
		cmp = func(a, b int32) int { return cmpOrd(xs[a], xs[b]) }
	case bat.Floats:
		cmp = func(a, b int32) int { return cmpOrd(xs[a], xs[b]) }
	case bat.Strs:
		cmp = func(a, b int32) int { return cmpOrd(xs[a], xs[b]) }
	case bat.Bools:
		cmp = func(a, b int32) int { return b2i(xs[a]) - b2i(xs[b]) }
	default:
		panic("algebra: sort on unknown vector")
	}
	if desc {
		inner := cmp
		cmp = func(a, b int32) int { return -inner(a, b) }
	}
	return cmp
}

func cmpOrd[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// TopN returns the first n positions of the full ordering. It currently
// sorts and truncates; the operator boundary exists so a heap-based
// implementation can slot in without touching callers.
func TopN(keys []SortKey, sel Sel, total, n int) []int32 {
	idx := Order(keys, sel, total)
	if n < len(idx) {
		idx = idx[:n]
	}
	return idx
}
