// Package monitor implements the observability layer of the demo: the
// "Analysis" pane (paper Figure 4) that tracks elapsed time, incoming data
// rate for given baskets and other parameters over a period of time, for
// individual queries and for the complete query network. A Collector
// periodically samples basket and factory counters and derives per-interval
// rates.
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"datacell/internal/basket"
	"datacell/internal/factory"
)

// Sample is one point-in-time snapshot of the network's counters.
type Sample struct {
	AtUsec  int64
	Baskets []basket.Stats
	Queries []factory.Stats
}

// Collector accumulates samples from a snapshot source.
type Collector struct {
	snap func() ([]basket.Stats, []factory.Stats)

	mu      sync.Mutex
	samples []Sample
	limit   int // 0: unbounded (the analysis pane's full series)
}

// NewCollector builds a collector over a snapshot function (typically
// wrapping Engine.Stats).
func NewCollector(snap func() ([]basket.Stats, []factory.Stats)) *Collector {
	return &Collector{snap: snap}
}

// SetLimit bounds the retained series to the newest n samples (0 resets
// to unbounded). Long-running samplers — the /metrics rate source ticks
// for the process lifetime — must bound retention; the analysis pane's
// experiment-sized runs keep the full series.
func (c *Collector) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.trimLocked()
	c.mu.Unlock()
}

// Sample takes one snapshot stamped with the given time (µs).
func (c *Collector) Sample(at int64) {
	b, q := c.snap()
	c.mu.Lock()
	c.samples = append(c.samples, Sample{AtUsec: at, Baskets: b, Queries: q})
	c.trimLocked()
	c.mu.Unlock()
}

func (c *Collector) trimLocked() {
	if c.limit > 0 && len(c.samples) > c.limit {
		// Copy the tail off the old backing array so retention is O(limit)
		// rather than the slice pinning every sample ever taken.
		tail := make([]Sample, c.limit)
		copy(tail, c.samples[len(c.samples)-c.limit:])
		c.samples = tail
	}
}

// Series returns the collected samples in order.
func (c *Collector) Series() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.samples...)
}

// IntervalRate is the derived activity of one object over one sampling
// interval.
type IntervalRate struct {
	Name        string
	FromUsec    int64
	ToUsec      int64
	TuplesInSec float64 // basket: append rate; query: consumption rate
	EvalsSec    float64 // query: evaluations per second
	AvgLatency  float64 // query: mean response time in the interval (µs)
	Occupancy   int     // basket: buffered tuples at interval end
}

// BasketRates derives per-interval input rates for one basket.
func (c *Collector) BasketRates(name string) []IntervalRate {
	samples := c.Series()
	var out []IntervalRate
	for i := 1; i < len(samples); i++ {
		prev := findBasket(samples[i-1].Baskets, name)
		cur := findBasket(samples[i].Baskets, name)
		if prev == nil || cur == nil {
			continue
		}
		dt := float64(samples[i].AtUsec-samples[i-1].AtUsec) / 1e6
		if dt <= 0 {
			continue
		}
		out = append(out, IntervalRate{
			Name:        name,
			FromUsec:    samples[i-1].AtUsec,
			ToUsec:      samples[i].AtUsec,
			TuplesInSec: float64(cur.TotalIn-prev.TotalIn) / dt,
			Occupancy:   cur.Len,
		})
	}
	return out
}

// QueryRates derives per-interval evaluation rates and latencies for one
// query.
func (c *Collector) QueryRates(name string) []IntervalRate {
	samples := c.Series()
	var out []IntervalRate
	for i := 1; i < len(samples); i++ {
		prev := findQuery(samples[i-1].Queries, name)
		cur := findQuery(samples[i].Queries, name)
		if prev == nil || cur == nil {
			continue
		}
		dt := float64(samples[i].AtUsec-samples[i-1].AtUsec) / 1e6
		if dt <= 0 {
			continue
		}
		r := IntervalRate{
			Name:        name,
			FromUsec:    samples[i-1].AtUsec,
			ToUsec:      samples[i].AtUsec,
			TuplesInSec: float64(cur.TuplesIn-prev.TuplesIn) / dt,
			EvalsSec:    float64(cur.Evals-prev.Evals) / dt,
		}
		if d := cur.Evals - prev.Evals; d > 0 {
			r.AvgLatency = float64(cur.SumLatency-prev.SumLatency) / float64(d)
		}
		out = append(out, r)
	}
	return out
}

func findBasket(bs []basket.Stats, name string) *basket.Stats {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

func findQuery(qs []factory.Stats, name string) *factory.Stats {
	for i := range qs {
		if qs[i].Name == name {
			return &qs[i]
		}
	}
	return nil
}

// AnalysisString renders the full analysis pane: one block per basket and
// per query with its interval series — the terminal rendering of Figure 4.
func (c *Collector) AnalysisString() string {
	samples := c.Series()
	if len(samples) == 0 {
		return "no samples\n"
	}
	var b strings.Builder
	names := map[string]bool{}
	for _, s := range samples {
		for _, bs := range s.Baskets {
			names[bs.Name] = true
		}
	}
	sorted := sortedKeys(names)
	for _, n := range sorted {
		fmt.Fprintf(&b, "basket %s:\n", n)
		for _, r := range c.BasketRates(n) {
			fmt.Fprintf(&b, "  t=%8.3fs in=%10.1f tup/s occupancy=%d\n",
				float64(r.ToUsec-samples[0].AtUsec)/1e6, r.TuplesInSec, r.Occupancy)
		}
	}
	qnames := map[string]bool{}
	for _, s := range samples {
		for _, qs := range s.Queries {
			qnames[qs.Name] = true
		}
	}
	for _, n := range sortedKeys(qnames) {
		fmt.Fprintf(&b, "query %s:\n", n)
		for _, r := range c.QueryRates(n) {
			fmt.Fprintf(&b, "  t=%8.3fs in=%10.1f tup/s evals=%6.1f/s avg_lat=%8.1fµs\n",
				float64(r.ToUsec-samples[0].AtUsec)/1e6, r.TuplesInSec, r.EvalsSec, r.AvgLatency)
		}
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Percentile computes the p-th percentile (0..100) of a latency sample by
// nearest-rank; it sorts a copy. Used by the Linear Road response-time
// checker and the benchmark harness.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int64(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := int(p/100*float64(len(cp))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}
