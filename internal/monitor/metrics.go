package monitor

import (
	"datacell/internal/metrics"
)

// RateMetricDescs declares the derived per-interval rate families the
// monitor exports — the analysis pane's rates (Figure 4) as gauges over
// the newest sampling interval. Levels and cumulative counters come from
// the engine collector; these are the only time-derived quantities on
// the /metrics page.
var RateMetricDescs = []metrics.Desc{
	{Name: "datacell_basket_append_rate_tuples_per_sec", Type: metrics.Gauge,
		Help: "Basket append rate over the newest sampling interval.", Labels: []string{"stream"}},
	{Name: "datacell_query_eval_rate_per_sec", Type: metrics.Gauge,
		Help: "Query evaluations per second over the newest sampling interval.", Labels: []string{"query"}},
	{Name: "datacell_query_tuples_rate_per_sec", Type: metrics.Gauge,
		Help: "Query tuple consumption rate over the newest sampling interval.", Labels: []string{"query"}},
	{Name: "datacell_query_interval_avg_latency_usec", Type: metrics.Gauge,
		Help: "Mean response time of evaluations in the newest sampling interval (microseconds).", Labels: []string{"query"}},
}

// MetricsCollector adapts the collector's newest sampling interval into
// a metrics source. It emits nothing until two samples exist; the caller
// owns the sampling cadence (and should bound retention with SetLimit).
func (c *Collector) MetricsCollector() metrics.Collector {
	return metrics.CollectorFunc{
		Descs: RateMetricDescs,
		Fn: func(emit func(metrics.Metric)) {
			samples := c.Series()
			if len(samples) < 2 {
				return
			}
			prev, cur := samples[len(samples)-2], samples[len(samples)-1]
			dt := float64(cur.AtUsec-prev.AtUsec) / 1e6
			if dt <= 0 {
				return
			}
			for _, b := range cur.Baskets {
				p := findBasket(prev.Baskets, b.Name)
				if p == nil {
					continue
				}
				emit(metrics.Metric{Name: "datacell_basket_append_rate_tuples_per_sec",
					LabelValues: []string{b.Name}, Value: float64(b.TotalIn-p.TotalIn) / dt})
			}
			for _, q := range cur.Queries {
				p := findQuery(prev.Queries, q.Name)
				if p == nil {
					continue
				}
				emit(metrics.Metric{Name: "datacell_query_eval_rate_per_sec",
					LabelValues: []string{q.Name}, Value: float64(q.Evals-p.Evals) / dt})
				emit(metrics.Metric{Name: "datacell_query_tuples_rate_per_sec",
					LabelValues: []string{q.Name}, Value: float64(q.TuplesIn-p.TuplesIn) / dt})
				if d := q.Evals - p.Evals; d > 0 {
					emit(metrics.Metric{Name: "datacell_query_interval_avg_latency_usec",
						LabelValues: []string{q.Name}, Value: float64(q.SumLatency-p.SumLatency) / float64(d)})
				}
			}
		},
	}
}
