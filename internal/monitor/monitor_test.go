package monitor

import (
	"strings"
	"testing"

	"datacell/internal/basket"
	"datacell/internal/factory"
)

func TestCollectorRates(t *testing.T) {
	var in int64
	var evals int64
	var lat int64
	snap := func() ([]basket.Stats, []factory.Stats) {
		return []basket.Stats{{Name: "s", TotalIn: in, Len: int(in % 10)}},
			[]factory.Stats{{Name: "q", TuplesIn: in, Evals: evals, SumLatency: lat}}
	}
	c := NewCollector(snap)
	c.Sample(0)
	in, evals, lat = 1000, 10, 5000
	c.Sample(1_000_000) // 1s later
	in, evals, lat = 3000, 30, 15000
	c.Sample(2_000_000)

	br := c.BasketRates("s")
	if len(br) != 2 {
		t.Fatalf("basket intervals = %d", len(br))
	}
	if br[0].TuplesInSec != 1000 || br[1].TuplesInSec != 2000 {
		t.Errorf("basket rates = %+v", br)
	}
	qr := c.QueryRates("q")
	if len(qr) != 2 {
		t.Fatalf("query intervals = %d", len(qr))
	}
	if qr[0].EvalsSec != 10 || qr[1].EvalsSec != 20 {
		t.Errorf("eval rates = %+v", qr)
	}
	if qr[0].AvgLatency != 500 || qr[1].AvgLatency != 500 {
		t.Errorf("latencies = %+v", qr)
	}
	if got := c.BasketRates("ghost"); got != nil {
		t.Errorf("unknown basket rates = %v", got)
	}
	if got := c.QueryRates("ghost"); got != nil {
		t.Errorf("unknown query rates = %v", got)
	}
}

func TestCollectorZeroDt(t *testing.T) {
	snap := func() ([]basket.Stats, []factory.Stats) {
		return []basket.Stats{{Name: "s"}}, nil
	}
	c := NewCollector(snap)
	c.Sample(5)
	c.Sample(5) // same timestamp → interval skipped
	if got := c.BasketRates("s"); len(got) != 0 {
		t.Errorf("zero-dt interval produced rates: %v", got)
	}
}

func TestAnalysisString(t *testing.T) {
	var in int64
	snap := func() ([]basket.Stats, []factory.Stats) {
		return []basket.Stats{{Name: "s", TotalIn: in}},
			[]factory.Stats{{Name: "q", TuplesIn: in}}
	}
	c := NewCollector(snap)
	if got := c.AnalysisString(); !strings.Contains(got, "no samples") {
		t.Errorf("empty analysis = %q", got)
	}
	c.Sample(0)
	in = 500
	c.Sample(1_000_000)
	out := c.AnalysisString()
	for _, want := range []string{"basket s:", "query q:", "tup/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q:\n%s", want, out)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{50, 10, 40, 20, 30}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("p50 = %d", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("p100 = %d", got)
	}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %d", got)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	// Input must stay unsorted.
	if xs[0] != 50 {
		t.Error("Percentile mutated input")
	}
}
