package basket

import (
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"sync"

	"datacell/internal/algebra"
	"datacell/internal/bat"
)

// Appender is the write side of a basket shared by receptors and the
// engine: both a plain Basket and a Sharded container satisfy it, so the
// receptor layer is agnostic of the partitioning behind a stream.
type Appender interface {
	Name() string
	Schema() bat.Schema
	Append(c *bat.Chunk, arrival int64) error
}

var (
	_ Appender = (*Basket)(nil)
	_ Appender = (*Sharded)(nil)
)

// Sharded partitions one stream's basket into N shards so receptors can
// append and factories can fire without contending on a single mutex. Rows
// are routed by hash of a user-declared key column, or round-robin per
// chunk when no key is declared.
//
// Epoch sealing: every appended row is assigned a global sequence number.
// The container tracks the settled watermark — the largest n such that
// every row with sequence < n has been fully appended to its shard. Tuple
// windows with slide S seal epoch g (rows [g·S, (g+1)·S)) exactly when the
// watermark passes (g+1)·S, which is what lets per-shard factory instances
// cut globally consistent basic windows without any cross-shard locking:
// the union of the shards' epoch-g slices is precisely the basic window g
// of the single-basket engine.
type Sharded struct {
	name   string
	schema bat.Schema
	shards []*Basket
	keyIdx int // hash column index; <0 = round-robin per chunk
	seed   maphash.Seed

	// pauseMu gates appends against Pause: producers hold the read side
	// for the whole append, so once Pause (the write side) returns, no
	// in-flight append can still make tuples visible — the atomicity the
	// single basket got from doing both under one mutex.
	pauseMu sync.RWMutex
	paused  bool // guarded by pauseMu

	mu        sync.Mutex
	claimed   int64        // sequence numbers handed out
	settled   SeqTracker   // contiguous prefix of shard-visible sequences
	rr        int64        // round-robin chunk counter
	pending   []*bat.Chunk // appends buffered while paused (pre-sequencing)
	pendArr   []int64
	onAppend  []appendSub
	nextSubID int
	remote    func(parts []RemotePart, base int64, rows int, arrival int64)
}

// RemotePart is one shard's slice of a routed append: the rows hashed (or
// round-robined) to the shard together with their global sequence stamps.
// The chunk may be a view sharing storage with the appended chunk, so a
// remote router must consume (serialize) it synchronously.
type RemotePart struct {
	Shard int
	Chunk *bat.Chunk
	Seqs  bat.Ints
}

// SetRemote diverts the container to a distributed shard fabric: appends
// are validated, sequenced and partitioned exactly as for local shards,
// but each shard's rows are delivered to fn — with base/rows identifying
// the append's claimed sequence range [base, base+rows) — instead of
// entering the local shard baskets, whose consumers would never see them.
// The container keeps settling sequence ranges, so Settled() stays
// meaningful for introspection; epoch sealing across the fabric is driven
// by the router's own sent-watermark, which it derives from the base/rows
// ranges it has forwarded. fn is invoked outside the container mutex;
// concurrent appends may invoke it out of sequence order, which is why the
// router must track contiguous ranges itself. Call before any consumer
// registers or any append flows.
func (s *Sharded) SetRemote(fn func(parts []RemotePart, base int64, rows int, arrival int64)) {
	s.mu.Lock()
	s.remote = fn
	s.mu.Unlock()
}

// seqRange is a completed append's sequence interval [lo, hi), recorded
// out of order and merged into the settled watermark.
type seqRange struct{ lo, hi int64 }

// SeqTracker derives the contiguous-prefix watermark of completed
// sequence ranges: ranges may complete out of order (concurrent producers
// claim, then settle), and the watermark only advances once every earlier
// sequence is covered — which is what makes it a safe epoch-sealing
// clock. The sharded container uses it for shard-visible rows; the
// distributed fabric's coordinator uses the same tracker for rows routed
// to workers. Callers serialize access (it holds no lock of its own).
type SeqTracker struct {
	wm   int64
	done []seqRange
}

// Add records the completed range [lo, hi) and advances the watermark
// over any now-contiguous prefix.
func (t *SeqTracker) Add(lo, hi int64) {
	if lo == t.wm {
		t.wm = hi
		// Absorb any previously recorded ranges that are now contiguous.
		for {
			advanced := false
			for i, r := range t.done {
				if r.lo == t.wm {
					t.wm = r.hi
					t.done = append(t.done[:i], t.done[i+1:]...)
					advanced = true
					break
				}
			}
			if !advanced {
				return
			}
		}
	}
	t.done = append(t.done, seqRange{lo, hi})
}

// Watermark reports the contiguous prefix: every sequence below it has
// completed.
func (t *SeqTracker) Watermark() int64 { return t.wm }

// NewSharded creates a sharded basket with n shards (minimum 1). keyIdx is
// the schema index of the partitioning key, or -1 for round-robin.
func NewSharded(name string, schema bat.Schema, n, keyIdx int) *Sharded {
	if n < 1 {
		n = 1
	}
	if keyIdx >= schema.Width() {
		keyIdx = -1
	}
	s := &Sharded{
		name:   name,
		schema: schema,
		keyIdx: keyIdx,
		seed:   maphash.MakeSeed(),
	}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, New(fmt.Sprintf("%s/%d", name, i), schema))
	}
	return s
}

// Name reports the stream the container belongs to.
func (s *Sharded) Name() string { return s.name }

// Schema reports the column layout.
func (s *Sharded) Schema() bat.Schema { return s.schema }

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes shard i; factories register consumers on each shard
// directly.
func (s *Sharded) Shard(i int) *Basket { return s.shards[i] }

// KeyIndex reports the partitioning column index (-1 for round-robin).
func (s *Sharded) KeyIndex() int { return s.keyIdx }

// Consumers reports the number of registered consumers (queries register
// on every shard, so the first shard's count is the container's).
func (s *Sharded) Consumers() int { return s.shards[0].Consumers() }

// Settled reports the sequence watermark: every row with sequence below it
// is visible in its shard (or, for a remote container, has been handed to
// the router). It is the epoch-sealing clock of the sharded engine. A
// single-shard local container derives it from the shard's own append
// counter — that fast path never touches the container's range tracking —
// while remote containers always use the claim/settle machinery.
func (s *Sharded) Settled() int64 {
	s.mu.Lock()
	remote := s.remote
	settled := s.settled.Watermark()
	s.mu.Unlock()
	if remote == nil && len(s.shards) == 1 {
		return s.shards[0].TotalIn()
	}
	return settled
}

// OnAppend registers a callback invoked after every container append has
// settled. The scheduler uses it to notify every shard transition of every
// consumer query (or query group) — shards that received no rows still
// need to learn that the epoch clock advanced. The returned cancel removes
// the subscription; a query (or group) leaving the stream must call it, or
// dropped queries keep taxing and waking on every later append.
func (s *Sharded) OnAppend(f func()) (cancel func()) {
	s.mu.Lock()
	id := s.nextSubID
	s.nextSubID++
	s.onAppend = append(s.onAppend, appendSub{id: id, f: f})
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.onAppend = cancelSub(s.onAppend, id)
		s.mu.Unlock()
	}
}

// Subscribers reports the number of live OnAppend subscriptions — the
// regression gauge for the drop-leaves-subscription-registered leak.
func (s *Sharded) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.onAppend)
}

// Append partitions a chunk across the shards, stamping each row with its
// global sequence number. The container lock is held only to claim the
// sequence range and settle it afterwards; the columnar copies run under
// the individual shard locks, so concurrent producers only contend when
// their rows land on the same shard.
func (s *Sharded) Append(c *bat.Chunk, arrival int64) error {
	rows := c.Rows()
	if rows == 0 {
		return nil
	}
	// Validate before the pause check: a malformed chunk must fail here,
	// not buffer while paused and blow up inside the Resume replay.
	if err := s.checkSchema(c); err != nil {
		return err
	}

	s.pauseMu.RLock()
	defer s.pauseMu.RUnlock()
	if s.paused {
		s.mu.Lock()
		s.pending = append(s.pending, c)
		s.pendArr = append(s.pendArr, arrival)
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	if s.remote == nil && len(s.shards) == 1 {
		// Fast path: the shard's own dense counter yields the identical
		// sequence stamps, so skip range claiming and settling entirely
		// (Settled reads the shard's append counter instead).
		subs := s.onAppend
		s.mu.Unlock()
		if err := s.shards[0].AppendSeqs(c, arrival, nil); err != nil {
			return err
		}
		fireSubs(subs)
		return nil
	}
	base, target := s.claimLocked(rows)
	s.mu.Unlock()

	return s.appendClaimed(c, arrival, base, target)
}

// claimLocked reserves the next sequence range (and, for round-robin
// routing, the destination shard) for a chunk of the given row count.
func (s *Sharded) claimLocked(rows int) (base int64, target int) {
	base = s.claimed
	s.claimed += int64(rows)
	if s.keyIdx < 0 {
		target = int(s.rr % int64(len(s.shards)))
		s.rr++
	}
	return base, target
}

// appendClaimed routes a chunk whose sequence range was already claimed,
// settles the range, and fires the append notifications.
func (s *Sharded) appendClaimed(c *bat.Chunk, arrival, base int64, target int) error {
	rows := c.Rows()
	s.mu.Lock()
	remote := s.remote
	s.mu.Unlock()
	var err error
	switch {
	case remote != nil:
		remote(s.routeParts(c, base, target), base, rows, arrival)
	case s.keyIdx < 0:
		err = s.shards[target].AppendSeqs(c, arrival, denseSeqs(base, rows))
	default:
		err = s.appendHashed(c, arrival, base)
	}

	s.mu.Lock()
	s.settleLocked(base, base+int64(rows))
	subs := s.onAppend
	s.mu.Unlock()
	fireSubs(subs)
	return err
}

func (s *Sharded) checkSchema(c *bat.Chunk) error {
	if len(c.Cols) != len(s.schema.Kinds) {
		return fmt.Errorf("basket %s: append of %d columns, want %d",
			s.name, len(c.Cols), len(s.schema.Kinds))
	}
	for i, col := range c.Cols {
		if col.Kind() != s.schema.Kinds[i] {
			return fmt.Errorf("basket %s: column %d is %s, want %s",
				s.name, i, col.Kind(), s.schema.Kinds[i])
		}
	}
	return nil
}

// appendHashed splits the chunk by key hash and appends each shard's rows
// (with their global sequence stamps) to that shard, one copy per row —
// the fused gather+append path.
func (s *Sharded) appendHashed(c *bat.Chunk, arrival, base int64) error {
	n := len(s.shards)
	rows := c.Rows()
	sels := make([]algebra.Sel, n)
	per := rows/n + 1
	for i := range sels {
		sels[i] = make(algebra.Sel, 0, per)
	}
	s.hashRows(c.Cols[s.keyIdx], sels)
	var firstErr error
	for sh, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		seqs := make(bat.Ints, len(sel))
		for k, i := range sel {
			seqs[k] = base + int64(i)
		}
		if err := s.shards[sh].AppendFetchSeqs(c, sel, arrival, seqs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// routeParts partitions a claimed append for remote delivery: one part per
// destination shard with the rows' global sequence stamps, in ascending
// row (and therefore sequence) order within each part — the same order the
// local shard baskets would have received.
func (s *Sharded) routeParts(c *bat.Chunk, base int64, target int) []RemotePart {
	rows := c.Rows()
	if s.keyIdx < 0 {
		return []RemotePart{{Shard: target, Chunk: c, Seqs: denseSeqs(base, rows)}}
	}
	n := len(s.shards)
	sels := make([]algebra.Sel, n)
	per := rows/n + 1
	for i := range sels {
		sels[i] = make(algebra.Sel, 0, per)
	}
	s.hashRows(c.Cols[s.keyIdx], sels)
	var parts []RemotePart
	for sh, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		sub := bat.NewChunk(s.schema)
		seqs := make(bat.Ints, len(sel))
		for k, i := range sel {
			seqs[k] = base + int64(i)
		}
		for i, col := range c.Cols {
			sub.Cols[i] = bat.AppendFetch(sub.Cols[i], col, sel)
		}
		parts = append(parts, RemotePart{Shard: sh, Chunk: sub, Seqs: seqs})
	}
	return parts
}

// hashRows assigns each row of the key column to a shard's selection
// list. The typed bulk loops keep the router off the boxed Value path —
// routing runs in the producer's append, so it is ingestion-critical.
func (s *Sharded) hashRows(key bat.Vector, sels []algebra.Sel) {
	n := uint64(len(sels))
	route := func(h uint64, i int) {
		sh := h % n
		sels[sh] = append(sels[sh], int32(i))
	}
	switch ks := key.(type) {
	case bat.Ints:
		for i, k := range ks {
			route(mix64(uint64(k)), i)
		}
	case bat.Times:
		for i, k := range ks {
			route(mix64(uint64(k)), i)
		}
	case bat.Floats:
		for i, k := range ks {
			// Hash the bit pattern: truncating to int64 would collapse
			// every key in [n, n+1) onto one shard.
			route(mix64(math.Float64bits(k)), i)
		}
	case bat.Strs:
		for i, k := range ks {
			route(maphash.String(s.seed, k), i)
		}
	case bat.Bools:
		for i, k := range ks {
			h := mix64(0)
			if k {
				h = mix64(1)
			}
			route(h, i)
		}
	default:
		for i := 0; i < key.Len(); i++ {
			route(mix64(uint64(key.Get(i).I)), i)
		}
	}
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed integer hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func denseSeqs(base int64, rows int) bat.Ints {
	seqs := make(bat.Ints, rows)
	for i := range seqs {
		seqs[i] = base + int64(i)
	}
	return seqs
}

// settleLocked records a completed append's sequence range; the tracker
// advances the settled watermark only over the contiguous prefix, which
// is what makes it a safe epoch-sealing clock under concurrent producers
// completing out of order.
func (s *Sharded) settleLocked(lo, hi int64) { s.settled.Add(lo, hi) }

// Pause holds subsequent appends back at the container level — they are
// neither sequenced nor routed until Resume, so epoch sealing is unaffected
// by a paused stream. Pause waits for in-flight appends to finish: once it
// returns, no tuple can become visible until Resume.
func (s *Sharded) Pause() {
	s.pauseMu.Lock()
	s.paused = true
	s.pauseMu.Unlock()
}

// Resume releases a paused container, replaying held appends through the
// normal partitioned path. The held chunks claim their sequence ranges
// under the same lock acquisition that clears the pause flag, so a
// concurrent producer cannot be sequenced ahead of them — resume order
// matches the single-basket engine.
func (s *Sharded) Resume() {
	s.pauseMu.Lock()
	s.paused = false
	s.mu.Lock()
	pending, arr := s.pending, s.pendArr
	s.pending, s.pendArr = nil, nil
	remote := s.remote
	s.mu.Unlock()
	if len(s.shards) == 1 && remote == nil {
		// Replay while still holding the pause gate: producers block on
		// its read side, so held rows keep their arrival-order sequences.
		for i, c := range pending {
			_ = s.shards[0].AppendSeqs(c, arr[i], nil)
		}
		s.mu.Lock()
		subs := s.onAppend
		s.mu.Unlock()
		s.pauseMu.Unlock()
		if len(pending) > 0 {
			fireSubs(subs)
		}
		return
	}
	// Claim the held chunks' sequence ranges before releasing the gate:
	// a producer unblocked by the release cannot be sequenced ahead of
	// them, matching the single-basket engine's resume order.
	type claim struct {
		base   int64
		target int
	}
	claims := make([]claim, len(pending))
	s.mu.Lock()
	for i, c := range pending {
		claims[i].base, claims[i].target = s.claimLocked(c.Rows())
	}
	s.mu.Unlock()
	s.pauseMu.Unlock()
	for i, c := range pending {
		_ = s.appendClaimed(c, arr[i], claims[i].base, claims[i].target)
	}
}

// Paused reports whether the container is holding arrivals back.
func (s *Sharded) Paused() bool {
	s.pauseMu.RLock()
	defer s.pauseMu.RUnlock()
	return s.paused
}

// Snapshot returns a copy of everything currently buffered across all
// shards, reassembled in global arrival (sequence) order — one-time
// queries over the stream see the same row order as the single-basket
// engine.
func (s *Sharded) Snapshot() *bat.Chunk {
	if len(s.shards) == 1 {
		return s.shards[0].Snapshot()
	}
	type part struct {
		c    *bat.Chunk
		seqs bat.Ints
	}
	var parts []part
	total := 0
	for _, sh := range s.shards {
		c, seqs := sh.SnapshotSeqs()
		parts = append(parts, part{c, seqs})
		total += c.Rows()
	}
	out := bat.NewChunk(s.schema)
	if total == 0 {
		return out
	}
	// Global sort by sequence stamp, then run-wise columnar appends.
	// In-shard sequences are NOT necessarily ascending: concurrent
	// producers may win a shard's mutex in a different order than they
	// claimed their ranges, so a plain k-way merge would misorder rows.
	// Producers route whole ranges to one shard, so sorted neighbors
	// usually form long same-shard runs and the bulk appends stay cheap.
	type ref struct {
		shard, row int
		seq        int64
	}
	refs := make([]ref, 0, total)
	for i, p := range parts {
		for j, sq := range p.seqs {
			refs = append(refs, ref{shard: i, row: j, seq: sq})
		}
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].seq < refs[b].seq })
	for pos := 0; pos < total; {
		end := pos + 1
		for end < total && refs[end].shard == refs[pos].shard && refs[end].row == refs[end-1].row+1 {
			end++
		}
		p := parts[refs[pos].shard]
		out.AppendChunk(p.c.Slice(refs[pos].row, refs[pos].row+(end-pos)))
		pos = end
	}
	return out
}

// Stats aggregates the shard counters into one basket-level snapshot.
func (s *Sharded) Stats() Stats {
	out := Stats{Name: s.name, Shards: len(s.shards)}
	for i, sh := range s.shards {
		st := sh.Stats()
		out.Len += st.Len
		out.TotalIn += st.TotalIn
		out.TotalDrop += st.TotalDrop
		if i == 0 {
			out.Consumers = st.Consumers
		}
	}
	out.Paused = s.Paused()
	return out
}

// ShardStats returns each shard's individual counters (monitoring).
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}
