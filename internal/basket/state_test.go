package basket

import (
	"testing"

	"datacell/internal/bat"
)

func stateChunk(t *testing.T, n, off int) (*bat.Chunk, bat.Ints) {
	t.Helper()
	sch := bat.NewSchema([]string{"ts", "v"}, []bat.Kind{bat.Time, bat.Float})
	ts := make(bat.Times, n)
	vs := make(bat.Floats, n)
	seqs := make(bat.Ints, n)
	for i := range ts {
		ts[i] = int64(off+i) * 1000
		vs[i] = float64(off + i)
		seqs[i] = int64(off + i)
	}
	return &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, vs}}, seqs
}

// cloneState deep-copies an exported image the way the snapshot codec
// does (ExportState returns views; NewFromState must adopt owned memory).
func cloneState(t *testing.T, st State) State {
	t.Helper()
	rows, _, err := bat.UnmarshalChunk(bat.MarshalChunk(nil, st.Rows))
	if err != nil {
		t.Fatal(err)
	}
	return State{
		Base:     st.Base,
		NextSeq:  st.NextSeq,
		TotalIn:  st.TotalIn,
		Rows:     rows,
		Arrivals: append(bat.Ints(nil), st.Arrivals...),
		Seqs:     append(bat.Ints(nil), st.Seqs...),
	}
}

// TestBasketStateRoundTrip pins the worker-restore contract: a basket
// rebuilt from an exported image, with its consumer re-registered at the
// tracked cursor, serves exactly the rows the original would have.
func TestBasketStateRoundTrip(t *testing.T) {
	c1, s1 := stateChunk(t, 10, 0)
	b := New("s/0", c1.Schema)
	if err := b.AppendSeqs(c1, 100, s1); err != nil {
		t.Fatal(err)
	}
	id := b.RegisterAt(0)
	b.Consume(id, 4)

	st := cloneState(t, b.ExportState())
	if st.Base != 0 || st.TotalIn != 10 || st.Rows.Rows() != 10 {
		t.Fatalf("unexpected image: %+v", st)
	}
	cur, ok := b.Cursor(id)
	if !ok || cur != 4 {
		t.Fatalf("cursor = (%d, %v), want (4, true)", cur, ok)
	}

	b2 := NewFromState("s/0", c1.Schema, st)
	id2 := b2.RegisterAt(cur)
	if got, _ := b2.Cursor(id2); got != 4 {
		t.Fatalf("restored cursor = %d, want 4", got)
	}
	if got, want := b2.Available(id2), b.Available(id); got != want {
		t.Fatalf("restored Available = %d, original %d", got, want)
	}

	// Both baskets receive the same new rows; their full contents and the
	// consumer's pending view must stay identical.
	c2, s2 := stateChunk(t, 5, 10)
	for _, bk := range []*Basket{b, b2} {
		if err := bk.AppendSeqs(c2, 101, s2); err != nil {
			t.Fatal(err)
		}
	}
	gotC, gotSeqs := b2.SnapshotSeqs()
	wantC, wantSeqs := b.SnapshotSeqs()
	if gotC.String() != wantC.String() {
		t.Fatalf("contents diverge:\nrestored:\n%s\noriginal:\n%s", gotC, wantC)
	}
	if len(gotSeqs) != len(wantSeqs) {
		t.Fatalf("seq stamps diverge: %v vs %v", gotSeqs, wantSeqs)
	}
	for i := range wantSeqs {
		if gotSeqs[i] != wantSeqs[i] {
			t.Fatalf("seq stamps diverge at %d: %v vs %v", i, gotSeqs, wantSeqs)
		}
	}
	peek, _, pseqs := b2.PeekSeqs(id2, 1<<30)
	if peek.Rows() != 11 || pseqs[0] != 4 {
		t.Fatalf("restored consumer sees %d rows from seq %d, want 11 from 4", peek.Rows(), pseqs[0])
	}

	// RegisterAt clamps into the buffered range.
	if lo := b2.RegisterAt(-99); func() int64 { c, _ := b2.Cursor(lo); return c }() != 0 {
		t.Fatal("RegisterAt did not clamp below base")
	}
	if hi := b2.RegisterAt(1 << 40); func() int64 { c, _ := b2.Cursor(hi); return c }() != 15 {
		t.Fatal("RegisterAt did not clamp above end")
	}
}
