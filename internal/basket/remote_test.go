package basket

import (
	"sort"
	"testing"

	"datacell/internal/bat"
)

// TestShardedRemoteDivert pins the fabric routing contract: with SetRemote
// installed, appends are sequenced and partitioned exactly as for local
// shards, but every row is delivered to the router (none enters a local
// shard basket), parts carry ascending global sequence stamps, the
// base/rows range covers the whole append, and the container keeps
// settling.
func TestShardedRemoteDivert(t *testing.T) {
	for _, keyed := range []bool{true, false} {
		keyIdx := -1
		if keyed {
			keyIdx = 0
		}
		s := NewSharded("s", shardSchema(), 4, keyIdx)
		type routed struct {
			parts      []RemotePart
			base, rows int64
		}
		var got []routed
		s.SetRemote(func(parts []RemotePart, base int64, rows int, arrival int64) {
			// Parts may share storage with the appended chunk: deep-copy
			// what the assertions need, as a real router serializes.
			cp := make([]RemotePart, len(parts))
			for i, p := range parts {
				cp[i] = RemotePart{Shard: p.Shard, Chunk: p.Chunk.CopyRange(0, p.Chunk.Rows()),
					Seqs: p.Seqs.CopyRange(0, int(p.Seqs.Len())).(bat.Ints)}
			}
			got = append(got, routed{cp, base, int64(rows)})
		})

		var want []int64
		next := int64(0)
		for batch := 0; batch < 3; batch++ {
			c := shardRows(next, next+1, next+2, next+3, next+4)
			for i := 0; i < 5; i++ {
				want = append(want, next+int64(i))
			}
			next += 5
			if err := s.Append(c, 42); err != nil {
				t.Fatal(err)
			}
		}

		// Nothing reached the local shards.
		for i := 0; i < s.NumShards(); i++ {
			if n := s.Shard(i).Stats().Len; n != 0 {
				t.Fatalf("keyed=%v: shard %d holds %d rows after remote divert", keyed, i, n)
			}
		}
		if got := s.Settled(); got != 15 {
			t.Fatalf("keyed=%v: settled = %d, want 15", keyed, got)
		}

		// Every row routed exactly once, ranges covering each append.
		var seqs []int64
		base := int64(0)
		for _, r := range got {
			if r.base != base || r.rows != 5 {
				t.Fatalf("keyed=%v: routed range [%d,+%d), want [%d,+5)", keyed, r.base, r.rows, base)
			}
			base += 5
			for _, p := range r.parts {
				if p.Shard < 0 || p.Shard >= 4 {
					t.Fatalf("keyed=%v: part shard %d out of range", keyed, p.Shard)
				}
				if p.Chunk.Rows() != int(p.Seqs.Len()) {
					t.Fatalf("keyed=%v: %d rows with %d seqs", keyed, p.Chunk.Rows(), p.Seqs.Len())
				}
				ks := bat.AsInts(p.Chunk.Cols[0])
				for i, sq := range p.Seqs {
					if i > 0 && sq <= p.Seqs[i-1] {
						t.Fatalf("keyed=%v: part seqs not ascending: %v", keyed, p.Seqs)
					}
					// Row content must match its sequence stamp (rows were
					// built with k == global position).
					if ks[i] != sq {
						t.Fatalf("keyed=%v: row k=%d stamped seq=%d", keyed, ks[i], sq)
					}
					seqs = append(seqs, sq)
				}
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		if len(seqs) != len(want) {
			t.Fatalf("keyed=%v: routed %d rows, want %d", keyed, len(seqs), len(want))
		}
		for i := range want {
			if seqs[i] != want[i] {
				t.Fatalf("keyed=%v: routed seqs %v, want %v", keyed, seqs, want)
			}
		}
	}
}

// TestShardedRemoteSingleShardSettled: a remote single-shard container
// settles through the claim path, so Settled() reflects routed rows (the
// local fast path would read the untouched shard basket and report 0).
func TestShardedRemoteSingleShardSettled(t *testing.T) {
	s := NewSharded("s", shardSchema(), 1, -1)
	s.SetRemote(func([]RemotePart, int64, int, int64) {})
	_ = s.Append(shardRows(1, 2, 3), 1)
	if got := s.Settled(); got != 3 {
		t.Fatalf("settled = %d, want 3", got)
	}
}

// TestShardedRemotePauseResume: appends held back by Pause replay through
// the remote router on Resume, in order.
func TestShardedRemotePauseResume(t *testing.T) {
	s := NewSharded("s", shardSchema(), 2, -1)
	var bases []int64
	s.SetRemote(func(parts []RemotePart, base int64, rows int, arrival int64) {
		bases = append(bases, base)
	})
	s.Pause()
	_ = s.Append(shardRows(1, 2), 1)
	_ = s.Append(shardRows(3), 1)
	if len(bases) != 0 {
		t.Fatalf("paused append reached the router: %v", bases)
	}
	s.Resume()
	if len(bases) != 2 || bases[0] != 0 || bases[1] != 2 {
		t.Fatalf("resume replayed bases %v, want [0 2]", bases)
	}
	if got := s.Settled(); got != 3 {
		t.Fatalf("settled = %d, want 3", got)
	}
}
