package basket

import (
	"fmt"
	"sync"
	"testing"

	"datacell/internal/bat"
)

func shardSchema() bat.Schema {
	return bat.NewSchema([]string{"k", "v"}, []bat.Kind{bat.Int, bat.Int})
}

func shardRows(ks ...int64) *bat.Chunk {
	c := bat.NewChunk(shardSchema())
	for _, k := range ks {
		_ = c.AppendRow(bat.IntValue(k), bat.IntValue(k*10))
	}
	return c
}

func TestShardedHashRoutingIsStable(t *testing.T) {
	s := NewSharded("s", shardSchema(), 4, 0)
	if err := s.Append(shardRows(1, 2, 3, 4, 1, 2, 3, 4), 1); err != nil {
		t.Fatal(err)
	}
	// Same key always lands on the same shard: each shard holds an even
	// number of rows (every key appears twice).
	total := 0
	for i := 0; i < s.NumShards(); i++ {
		n := s.Shard(i).Stats().Len
		if n%2 != 0 {
			t.Errorf("shard %d holds %d rows; same key split across shards", i, n)
		}
		total += n
	}
	if total != 8 {
		t.Errorf("total rows = %d", total)
	}
	if s.Settled() != 8 {
		t.Errorf("settled = %d", s.Settled())
	}
}

func TestShardedRoundRobinSpreadsChunks(t *testing.T) {
	s := NewSharded("s", shardSchema(), 3, -1)
	for i := 0; i < 6; i++ {
		if err := s.Append(shardRows(int64(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if n := s.Shard(i).Stats().Len; n != 2 {
			t.Errorf("shard %d rows = %d, want 2", i, n)
		}
	}
}

// TestShardedSeqStampsGlobalOrder checks every row carries its global
// arrival position, regardless of which shard it landed on.
func TestShardedSeqStampsGlobalOrder(t *testing.T) {
	s := NewSharded("s", shardSchema(), 4, 0)
	cids := make([]int, 4)
	for i := range cids {
		cids[i] = s.Shard(i).Register()
	}
	_ = s.Append(shardRows(5, 6, 7, 8, 9), 1)
	seen := map[int64]bool{}
	for i := 0; i < 4; i++ {
		c, _, seqs := s.Shard(i).PeekSeqs(cids[i], 100)
		if c == nil {
			continue
		}
		for j := 0; j < c.Rows(); j++ {
			if seen[seqs[j]] {
				t.Fatalf("sequence %d appears twice", seqs[j])
			}
			seen[seqs[j]] = true
			// Row k=5+g carries sequence g.
			if want := c.Cols[0].Get(j).I - 5; seqs[j] != want {
				t.Errorf("row k=%d has seq %d, want %d", c.Cols[0].Get(j).I, seqs[j], want)
			}
		}
	}
	if len(seen) != 5 {
		t.Errorf("recovered %d sequences, want 5", len(seen))
	}
}

// TestShardedSettledUnderConcurrency: the watermark only ever covers fully
// appended prefixes, and ends at the exact total.
func TestShardedSettledUnderConcurrency(t *testing.T) {
	s := NewSharded("s", shardSchema(), 4, 0)
	const producers = 8
	const chunks = 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < chunks; i++ {
				_ = s.Append(shardRows(int64(p), int64(i), int64(p+i)), 1)
			}
		}(p)
	}
	wg.Wait()
	want := int64(producers * chunks * 3)
	if got := s.Settled(); got != want {
		t.Errorf("settled = %d, want %d", got, want)
	}
	if got := s.Stats().TotalIn; got != want {
		t.Errorf("TotalIn = %d, want %d", got, want)
	}
}

func TestShardedOnAppendFiresAfterSettle(t *testing.T) {
	s := NewSharded("s", shardSchema(), 2, 0)
	var calls int
	s.OnAppend(func() {
		if s.Settled() == 0 {
			t.Error("callback before settle")
		}
		calls++
	})
	_ = s.Append(shardRows(1, 2), 1)
	_ = s.Append(shardRows(3), 1)
	if calls != 2 {
		t.Errorf("calls = %d", calls)
	}
}

func TestShardedPauseHoldsSequencing(t *testing.T) {
	s := NewSharded("s", shardSchema(), 2, 0)
	s.Pause()
	_ = s.Append(shardRows(1, 2, 3), 1)
	if s.Settled() != 0 {
		t.Error("paused append advanced the watermark")
	}
	if got := s.Stats().Len; got != 0 {
		t.Errorf("paused rows visible: %d", got)
	}
	s.Resume()
	if s.Settled() != 3 {
		t.Errorf("settled after resume = %d", s.Settled())
	}
}

func TestShardedSchemaMismatch(t *testing.T) {
	s := NewSharded("s", shardSchema(), 2, 0)
	bad := bat.NewChunk(bat.NewSchema([]string{"x"}, []bat.Kind{bat.Str}))
	_ = bad.AppendRow(bat.StrValue("no"))
	if err := s.Append(bad, 1); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	s := NewSharded("s", shardSchema(), 4, 0)
	_ = s.Append(shardRows(1, 2, 3, 4, 5, 6), 1)
	st := s.Stats()
	if st.Name != "s" || st.Shards != 4 || st.Len != 6 || st.TotalIn != 6 {
		t.Errorf("stats = %+v", st)
	}
	if got := len(s.ShardStats()); got != 4 {
		t.Errorf("ShardStats len = %d", got)
	}
	if s.Shard(0).Name() != "s/0" {
		t.Errorf("shard name = %q", s.Shard(0).Name())
	}
}

func TestShardedSingleDegeneratesToBasket(t *testing.T) {
	s := NewSharded("s", shardSchema(), 1, -1)
	cid := s.Shard(0).Register()
	for i := 0; i < 3; i++ {
		_ = s.Append(shardRows(int64(i)), int64(i+1))
	}
	c, _, seqs := s.Shard(0).PeekSeqs(cid, 10)
	if c.Rows() != 3 {
		t.Fatalf("rows = %d", c.Rows())
	}
	for i := 0; i < 3; i++ {
		if seqs[i] != int64(i) {
			t.Errorf("seq[%d] = %d", i, seqs[i])
		}
	}
	snap := s.Snapshot()
	if snap.Rows() != 3 {
		t.Errorf("snapshot rows = %d", snap.Rows())
	}
	if fmt.Sprint(snap.Row(0)) != fmt.Sprint(c.Row(0)) {
		t.Errorf("snapshot diverges from shard content")
	}
}

// TestShardedPausedAppendValidates: malformed chunks must be rejected at
// Append time even while paused — not buffered and exploded on Resume.
func TestShardedPausedAppendValidates(t *testing.T) {
	s := NewSharded("s", shardSchema(), 2, 0)
	s.Pause()
	bad := bat.NewChunk(bat.NewSchema([]string{"x"}, []bat.Kind{bat.Str}))
	_ = bad.AppendRow(bat.StrValue("no"))
	if err := s.Append(bad, 1); err == nil {
		t.Fatal("paused append accepted a malformed chunk")
	}
	s.Resume() // must not panic and must replay nothing
	if got := s.Stats().TotalIn; got != 0 {
		t.Errorf("TotalIn = %d after rejected append", got)
	}
}

// TestShardedSnapshotOutOfOrderSeqs: producers can win a shard's mutex in
// a different order than they claimed sequence ranges, so in-shard
// sequences are not ascending; Snapshot must still return global order.
func TestShardedSnapshotOutOfOrderSeqs(t *testing.T) {
	s := NewSharded("s", shardSchema(), 2, 0)
	// Simulate the race: the later range lands in shard 0 first.
	if err := s.Shard(0).AppendSeqs(shardRows(2, 3), 1, seqInts(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Shard(0).AppendSeqs(shardRows(0, 1), 1, seqInts(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Shard(1).AppendSeqs(shardRows(4), 1, seqInts(4)); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Rows() != 5 {
		t.Fatalf("rows = %d", snap.Rows())
	}
	for i := 0; i < 5; i++ {
		if got := snap.Cols[0].Get(i).I; got != int64(i) {
			t.Fatalf("row %d = k%d, want k%d (global order lost)", i, got, i)
		}
	}
}

func seqInts(vals ...int64) bat.Ints { return bat.Ints(vals) }

// TestShardedPauseIsAtomic: once Pause returns, no in-flight append may
// make tuples visible — the guarantee the single basket got from holding
// one mutex across the pause check and the append.
func TestShardedPauseIsAtomic(t *testing.T) {
	s := NewSharded("s", shardSchema(), 4, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Append(shardRows(int64(p), int64(i)), 1)
			}
		}(p)
	}
	for round := 0; round < 20; round++ {
		s.Pause()
		before := s.Stats().TotalIn
		for spin := 0; spin < 100; spin++ {
			if got := s.Stats().TotalIn; got != before {
				t.Fatalf("round %d: %d tuples became visible after Pause returned", round, got-before)
			}
		}
		s.Resume()
	}
	close(stop)
	wg.Wait()
}
