package basket

import (
	"math/rand"
	"sync"
	"testing"

	"datacell/internal/bat"
)

func sch() bat.Schema {
	return bat.NewSchema([]string{"v"}, []bat.Kind{bat.Int})
}

func chunkOf(xs ...int64) *bat.Chunk {
	return &bat.Chunk{Schema: sch(), Cols: []bat.Vector{bat.Ints(xs)}}
}

func TestAppendPeekConsume(t *testing.T) {
	b := New("s", sch())
	id := b.Register()
	if err := b.Append(chunkOf(1, 2, 3), 100); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(id); got != 3 {
		t.Fatalf("Available = %d", got)
	}
	c, arr := b.Peek(id, 2)
	if c.Rows() != 2 || c.Row(0)[0].I != 1 {
		t.Fatalf("Peek = %v", c)
	}
	if len(arr) != 2 || arr[0] != 100 {
		t.Fatalf("arrivals = %v", arr)
	}
	b.Consume(id, 2)
	if got := b.Available(id); got != 1 {
		t.Fatalf("Available after consume = %d", got)
	}
	c, _ = b.Peek(id, 10)
	if c.Rows() != 1 || c.Row(0)[0].I != 3 {
		t.Fatalf("Peek after consume = %v", c)
	}
}

func TestPeekEmptyAndUnknownConsumer(t *testing.T) {
	b := New("s", sch())
	id := b.Register()
	if c, _ := b.Peek(id, 5); c != nil {
		t.Error("Peek of empty basket should be nil")
	}
	if c, _ := b.Peek(99, 5); c != nil {
		t.Error("Peek of unknown consumer should be nil")
	}
	if b.Available(99) != 0 {
		t.Error("Available of unknown consumer should be 0")
	}
	b.Consume(99, 5) // must not panic
}

func TestRegisterSeesOnlyNewTuples(t *testing.T) {
	b := New("s", sch())
	first := b.Register()
	_ = b.Append(chunkOf(1, 2), 0)
	late := b.Register()
	if got := b.Available(late); got != 0 {
		t.Errorf("late consumer Available = %d, want 0", got)
	}
	if got := b.Available(first); got != 2 {
		t.Errorf("first consumer Available = %d, want 2", got)
	}
}

func TestAppendValidation(t *testing.T) {
	b := New("s", sch())
	bad := &bat.Chunk{
		Schema: bat.NewSchema([]string{"x", "y"}, []bat.Kind{bat.Int, bat.Int}),
		Cols:   []bat.Vector{bat.Ints{1}, bat.Ints{2}},
	}
	if err := b.Append(bad, 0); err == nil {
		t.Error("arity mismatch should fail")
	}
	wrong := &bat.Chunk{
		Schema: bat.NewSchema([]string{"v"}, []bat.Kind{bat.Str}),
		Cols:   []bat.Vector{bat.Strs{"x"}},
	}
	if err := b.Append(wrong, 0); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestVacuumDropsFullyConsumedPrefix(t *testing.T) {
	b := New("s", sch())
	id := b.Register()
	n := vacuumThreshold + 100
	for i := 0; i < n; i++ {
		_ = b.Append(chunkOf(int64(i)), 0)
	}
	b.Consume(id, int64(vacuumThreshold))
	st := b.Stats()
	if st.TotalDrop < vacuumThreshold {
		t.Errorf("TotalDrop = %d, want >= %d", st.TotalDrop, vacuumThreshold)
	}
	if st.Len != n-int(st.TotalDrop) {
		t.Errorf("Len = %d after dropping %d of %d", st.Len, st.TotalDrop, n)
	}
	// Remaining data still correct.
	c, _ := b.Peek(id, 5)
	if c.Row(0)[0].I != int64(vacuumThreshold) {
		t.Errorf("first pending = %v", c.Row(0)[0])
	}
}

func TestVacuumRespectsSlowestConsumer(t *testing.T) {
	b := New("s", sch())
	fast := b.Register()
	slow := b.Register()
	for i := 0; i < vacuumThreshold*2; i++ {
		_ = b.Append(chunkOf(int64(i)), 0)
	}
	b.Consume(fast, vacuumThreshold*2)
	if got := b.Stats().TotalDrop; got != 0 {
		t.Errorf("dropped %d tuples while slow consumer unread", got)
	}
	b.Consume(slow, vacuumThreshold*2)
	if got := b.Stats().TotalDrop; got == 0 {
		t.Error("nothing dropped after all consumed")
	}
}

func TestUnregisterFreesTuples(t *testing.T) {
	b := New("s", sch())
	a := b.Register()
	z := b.Register()
	for i := 0; i < vacuumThreshold+1; i++ {
		_ = b.Append(chunkOf(int64(i)), 0)
	}
	b.Consume(a, int64(vacuumThreshold+1))
	if b.Stats().TotalDrop != 0 {
		t.Fatal("should hold for z")
	}
	b.Unregister(z)
	if b.Stats().TotalDrop == 0 {
		t.Error("unregister should release tuples")
	}
}

func TestNoConsumersDropsEverything(t *testing.T) {
	b := New("s", sch())
	_ = b.Append(chunkOf(1, 2, 3), 0)
	id := b.Register()
	_ = b.Append(chunkOf(4), 0)
	b.Unregister(id)
	if st := b.Stats(); st.Len != 0 {
		t.Errorf("unconsumed basket Len = %d, want 0", st.Len)
	}
}

func TestPauseResume(t *testing.T) {
	b := New("s", sch())
	id := b.Register()
	var notified int
	b.OnAppend(func() { notified++ })
	b.Pause()
	if !b.Paused() {
		t.Fatal("not paused")
	}
	_ = b.Append(chunkOf(1, 2), 50)
	if got := b.Available(id); got != 0 {
		t.Errorf("paused basket exposed %d tuples", got)
	}
	if notified != 0 {
		t.Error("paused append should not notify")
	}
	b.Resume()
	if got := b.Available(id); got != 2 {
		t.Errorf("after resume Available = %d", got)
	}
	if notified != 1 {
		t.Errorf("resume notifications = %d, want 1", notified)
	}
	c, arr := b.Peek(id, 10)
	if c.Rows() != 2 || arr[0] != 50 {
		t.Errorf("flushed data = %v arr=%v", c, arr)
	}
	// Resume of an unpaused, empty-pending basket should not notify.
	b.Resume()
	if notified != 1 {
		t.Errorf("spurious notification, n = %d", notified)
	}
}

func TestOnAppendNotification(t *testing.T) {
	b := New("s", sch())
	ch := make(chan struct{}, 4)
	b.OnAppend(func() { ch <- struct{}{} })
	_ = b.Append(chunkOf(1), 0)
	select {
	case <-ch:
	default:
		t.Error("no notification")
	}
}

func TestPeekViewStableAcrossVacuum(t *testing.T) {
	b := New("s", sch())
	id := b.Register()
	for i := 0; i < vacuumThreshold+10; i++ {
		_ = b.Append(chunkOf(int64(i)), 0)
	}
	view, _ := b.Peek(id, 5)
	b.Consume(id, int64(vacuumThreshold+10)) // triggers vacuum & realloc
	if view.Row(0)[0].I != 0 || view.Row(4)[0].I != 4 {
		t.Error("old view corrupted by vacuum")
	}
}

// Property-style concurrency test: concurrent appenders and one consumer;
// every appended tuple is seen exactly once, in order.
func TestConcurrentAppendConsume(t *testing.T) {
	b := New("s", sch())
	id := b.Register()
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = b.Append(chunkOf(int64(w)), 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	counts := make(map[int64]int)
	total := 0
	rng := rand.New(rand.NewSource(1))
	for total < writers*perWriter {
		c, _ := b.Peek(id, 1+rng.Intn(64))
		if c == nil {
			select {
			case <-done:
				c2, _ := b.Peek(id, writers*perWriter)
				if c2 == nil {
					if total != writers*perWriter {
						t.Fatalf("saw %d tuples, want %d", total, writers*perWriter)
					}
					break
				}
				c = c2
			default:
				continue
			}
		}
		rows := c.Rows()
		for i := 0; i < rows; i++ {
			counts[c.Row(i)[0].I]++
		}
		b.Consume(id, int64(rows))
		total += rows
	}
	for w := int64(0); w < writers; w++ {
		if counts[w] != perWriter {
			t.Errorf("writer %d: saw %d tuples, want %d", w, counts[w], perWriter)
		}
	}
}

func TestStats(t *testing.T) {
	b := New("str", sch())
	_ = b.Register()
	_ = b.Append(chunkOf(1, 2), 0)
	st := b.Stats()
	if st.Name != "str" || st.TotalIn != 2 || st.Len != 2 || st.Consumers != 1 || st.Paused {
		t.Errorf("stats = %+v", st)
	}
}
