// Package basket implements DataCell's baskets: lightweight columnar
// tables that buffer in-flight stream tuples. A receptor appends incoming
// events to a basket; the continuous queries bound to the stream each hold
// a read cursor into it; and "once a tuple has been seen by all relevant
// queries, it is dropped from its basket" (paper §3) — implemented here by
// vacuuming the prefix below the minimum cursor.
//
// In the Petri-net scheduler, baskets are the places: appends raise tokens
// that enable the factory transitions reading from them.
//
// Every stream is fronted by a Sharded container that partitions the
// basket into N independently locked shards (hash on a declared key,
// round-robin otherwise) so producers and factory firings scale across
// cores; at the default N=1 it degenerates to the classic single basket.
// The container assigns each row a global sequence number and maintains a
// settled watermark — the contiguous prefix of sequences fully visible in
// their shards — which is the epoch-sealing clock that lets per-shard
// consumers cut globally consistent basic windows (see ARCHITECTURE.md,
// "shard-merge invariant").
package basket

import (
	"fmt"
	"sync"

	"datacell/internal/bat"
)

// Basket buffers stream tuples between a receptor and the factories of the
// continuous queries bound to the stream. It is safe for concurrent use.
//
// Every row carries a sequence stamp. A standalone basket assigns its own
// dense sequence (0, 1, 2, ...); a basket serving as one shard of a
// Sharded container receives globally assigned stamps via AppendSeqs, so
// shard-local consumers can reconstruct global epoch (basic-window)
// boundaries.
type Basket struct {
	name   string
	schema bat.Schema

	mu        sync.Mutex
	cols      []bat.Vector
	arrivals  bat.Ints // per-row arrival stamp, microseconds
	seqs      bat.Ints // per-row sequence stamp (global in a shard)
	nextSeq   int64    // auto-assigned sequence for plain Append
	base      int64    // absolute row id of cols[*][0]
	consumers map[int]int64
	nextID    int
	totalIn   int64
	totalDrop int64
	onAppend  []appendSub
	nextSubID int
	paused    bool
	pending   []*bat.Chunk // appends buffered while paused
	pendStamp []int64
	pendSeqs  []bat.Ints
}

// New creates an empty basket for the given stream schema.
func New(name string, schema bat.Schema) *Basket {
	return &Basket{
		name:      name,
		schema:    schema,
		cols:      bat.NewChunk(schema).Cols,
		consumers: make(map[int]int64),
	}
}

// Name reports the stream the basket belongs to.
func (b *Basket) Name() string { return b.name }

// Schema reports the column layout.
func (b *Basket) Schema() bat.Schema { return b.schema }

// appendSub is one OnAppend subscription. The subscriber lists are
// copy-on-write: firing snapshots the slice under the lock and invokes the
// callbacks outside it, and cancellation rebuilds the slice, so a snapshot
// taken by a concurrent append stays valid.
type appendSub struct {
	id int
	f  func()
}

func fireSubs(subs []appendSub) {
	for _, s := range subs {
		s.f()
	}
}

func cancelSub(subs []appendSub, id int) []appendSub {
	out := make([]appendSub, 0, len(subs))
	for _, s := range subs {
		if s.id != id {
			out = append(out, s)
		}
	}
	return out
}

// OnAppend registers a callback invoked (outside the basket lock) after
// every append. The scheduler uses it as the Petri-net token notification.
// The returned cancel removes the subscription — a query that unbinds from
// the stream must call it, or every later append keeps paying for (and
// waking) a dead query.
func (b *Basket) OnAppend(f func()) (cancel func()) {
	b.mu.Lock()
	id := b.nextSubID
	b.nextSubID++
	b.onAppend = append(b.onAppend, appendSub{id: id, f: f})
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		b.onAppend = cancelSub(b.onAppend, id)
		b.mu.Unlock()
	}
}

// Subscribers reports the number of live OnAppend subscriptions.
func (b *Basket) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.onAppend)
}

// Register adds a consumer whose cursor starts at the current end of the
// basket: a freshly registered query sees only tuples arriving after it,
// matching the paper's continuous-query semantics. It returns the consumer
// id.
func (b *Basket) Register() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	b.consumers[id] = b.base + int64(b.len())
	return id
}

// Unregister removes a consumer and vacuums any tuples only it was
// holding.
func (b *Basket) Unregister(id int) {
	b.mu.Lock()
	delete(b.consumers, id)
	b.vacuumLocked()
	b.mu.Unlock()
}

// Consumers reports the number of registered consumers.
func (b *Basket) Consumers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.consumers)
}

// Append adds a chunk of stream tuples, all stamped with the same arrival
// time (microseconds; receptors pass the wall clock, benchmarks may pass
// logical time). The chunk's columns must match the basket schema by kind
// and arity. Rows receive the basket's own dense sequence stamps.
func (b *Basket) Append(c *bat.Chunk, arrival int64) error {
	return b.AppendSeqs(c, arrival, nil)
}

// AppendSeqs is Append with caller-assigned per-row sequence stamps (one
// per row, strictly increasing within the call). A Sharded container uses
// it to stamp each shard's rows with their global stream positions; nil
// seqs fall back to the basket's own dense counter.
func (b *Basket) AppendSeqs(c *bat.Chunk, arrival int64, seqs bat.Ints) error {
	if len(c.Cols) != len(b.schema.Kinds) {
		return fmt.Errorf("basket %s: append of %d columns, want %d",
			b.name, len(c.Cols), len(b.schema.Kinds))
	}
	for i, col := range c.Cols {
		if col.Kind() != b.schema.Kinds[i] {
			return fmt.Errorf("basket %s: column %d is %s, want %s",
				b.name, i, col.Kind(), b.schema.Kinds[i])
		}
	}
	if seqs != nil && int(seqs.Len()) != c.Rows() {
		return fmt.Errorf("basket %s: %d seqs for %d rows", b.name, seqs.Len(), c.Rows())
	}
	b.mu.Lock()
	if b.paused {
		// Paused streams hold arrivals back; they flow in on Resume,
		// which is how the demo's per-stream pause behaves.
		b.pending = append(b.pending, c)
		b.pendStamp = append(b.pendStamp, arrival)
		b.pendSeqs = append(b.pendSeqs, seqs)
		b.mu.Unlock()
		return nil
	}
	b.appendLocked(c, arrival, seqs)
	subs := b.onAppend
	b.mu.Unlock()
	fireSubs(subs)
	return nil
}

// AppendFetchSeqs appends only the rows of c at the sel positions,
// stamped with the given arrival time and sequence numbers (one per
// selected row). It is the sharded routing path: the container partitions
// a chunk by key and each shard copies its rows exactly once, straight
// into its columns. The caller guarantees the chunk matches the schema.
func (b *Basket) AppendFetchSeqs(c *bat.Chunk, sel []int32, arrival int64, seqs bat.Ints) error {
	if len(sel) == 0 {
		return nil
	}
	b.mu.Lock()
	if b.paused {
		sub := bat.NewChunk(b.schema)
		for i, col := range c.Cols {
			sub.Cols[i] = bat.AppendFetch(sub.Cols[i], col, sel)
		}
		b.pending = append(b.pending, sub)
		b.pendStamp = append(b.pendStamp, arrival)
		b.pendSeqs = append(b.pendSeqs, seqs)
		b.mu.Unlock()
		return nil
	}
	for i := range b.cols {
		b.cols[i] = bat.AppendFetch(b.cols[i], c.Cols[i], sel)
	}
	for range sel {
		b.arrivals = append(b.arrivals, arrival)
	}
	b.seqs = append(b.seqs, seqs...)
	if n := seqs[len(seqs)-1] + 1; n > b.nextSeq {
		b.nextSeq = n
	}
	b.totalIn += int64(len(sel))
	subs := b.onAppend
	b.mu.Unlock()
	fireSubs(subs)
	return nil
}

func (b *Basket) appendLocked(c *bat.Chunk, arrival int64, seqs bat.Ints) {
	rows := c.Rows()
	for i := range b.cols {
		b.cols[i] = b.cols[i].AppendVector(c.Cols[i])
	}
	for i := 0; i < rows; i++ {
		b.arrivals = append(b.arrivals, arrival)
	}
	if seqs == nil {
		for i := 0; i < rows; i++ {
			b.seqs = append(b.seqs, b.nextSeq)
			b.nextSeq++
		}
	} else if rows > 0 {
		b.seqs = append(b.seqs, seqs...)
		if n := seqs[rows-1] + 1; n > b.nextSeq {
			b.nextSeq = n
		}
	}
	b.totalIn += int64(rows)
}

// Pause makes subsequent appends queue inside the basket instead of
// becoming visible to consumers.
func (b *Basket) Pause() {
	b.mu.Lock()
	b.paused = true
	b.mu.Unlock()
}

// Resume releases a paused basket, flushing any held appends, and fires
// the append notifications if anything flowed in.
func (b *Basket) Resume() {
	b.mu.Lock()
	b.paused = false
	flushed := len(b.pending) > 0
	for i, c := range b.pending {
		b.appendLocked(c, b.pendStamp[i], b.pendSeqs[i])
	}
	b.pending, b.pendStamp, b.pendSeqs = nil, nil, nil
	subs := b.onAppend
	b.mu.Unlock()
	if flushed {
		fireSubs(subs)
	}
}

// Paused reports whether the basket is holding arrivals back.
func (b *Basket) Paused() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.paused
}

func (b *Basket) len() int {
	if len(b.cols) == 0 {
		return int(b.arrivals.Len())
	}
	return b.cols[0].Len()
}

// TotalIn reports the number of tuples ever appended. For a single-shard
// container it doubles as the settled sequence watermark: rows become
// visible and counted under the same lock.
func (b *Basket) TotalIn() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalIn
}

// Available reports how many tuples are pending for the given consumer.
func (b *Basket) Available(id int) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.consumers[id]
	if !ok {
		return 0
	}
	return b.base + int64(b.len()) - cur
}

// Peek returns up to n pending tuples for the consumer without consuming
// them, plus their arrival stamps. The returned chunk is a view; it stays
// valid after concurrent appends and vacuums (vacuum reallocates, old
// views keep the old arrays). It returns nil when nothing is pending.
func (b *Basket) Peek(id int, n int) (*bat.Chunk, bat.Ints) {
	c, arr, _ := b.PeekSeqs(id, n)
	return c, arr
}

// PeekSeqs is Peek returning the rows' sequence stamps as well — the
// shard-aware read path, which needs global positions to reconstruct epoch
// boundaries.
func (b *Basket) PeekSeqs(id int, n int) (*bat.Chunk, bat.Ints, bat.Ints) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.consumers[id]
	if !ok {
		return nil, nil, nil
	}
	lo := int(cur - b.base)
	hi := b.len()
	if hi-lo > n {
		hi = lo + n
	}
	if hi <= lo {
		return nil, nil, nil
	}
	cols := make([]bat.Vector, len(b.cols))
	for i, col := range b.cols {
		cols[i] = col.Slice(lo, hi)
	}
	return &bat.Chunk{Schema: b.schema, Cols: cols},
		b.arrivals[lo:hi:hi], b.seqs[lo:hi:hi]
}

// Snapshot returns a copy of everything currently buffered in the basket,
// regardless of consumer cursors. One-time queries use it to read a stream
// as if it were a table — the paper's integration of baskets and tables in
// one processing fabric.
func (b *Basket) Snapshot() *bat.Chunk {
	c, _ := b.SnapshotSeqs()
	return c
}

// SnapshotSeqs is Snapshot returning the rows' sequence stamps as well,
// letting a Sharded container reassemble its shards' snapshots in global
// arrival order.
func (b *Basket) SnapshotSeqs() (*bat.Chunk, bat.Ints) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cols := make([]bat.Vector, len(b.cols))
	for i, col := range b.cols {
		cols[i] = col.Slice(0, b.len())
	}
	n := b.len()
	return &bat.Chunk{Schema: b.schema, Cols: cols}, b.seqs[0:n:n]
}

// State is a transferable image of a basket's buffered rows and sequence
// counters — what a fabric worker persists per shard in its snapshot and
// ships during an elastic shard handoff. Rows/Arrivals/Seqs from
// ExportState are views (stable under concurrent appends and vacuums,
// which reallocate); a State decoded from the wire owns fresh vectors.
// Consumer cursors are deliberately not part of the image: the restoring
// side re-registers its consumers at the cursors it tracked itself.
type State struct {
	Base     int64 // absolute row id of Rows[0]
	NextSeq  int64
	TotalIn  int64
	Rows     *bat.Chunk
	Arrivals bat.Ints
	Seqs     bat.Ints
}

// ExportState captures the basket's buffered rows and counters. The
// returned chunk and stamp slices are views sharing the basket's current
// arrays; the caller may marshal them without further locking.
func (b *Basket) ExportState() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.len()
	cols := make([]bat.Vector, len(b.cols))
	for i, col := range b.cols {
		cols[i] = col.Slice(0, n)
	}
	return State{
		Base:     b.base,
		NextSeq:  b.nextSeq,
		TotalIn:  b.totalIn,
		Rows:     &bat.Chunk{Schema: b.schema, Cols: cols},
		Arrivals: b.arrivals[0:n:n],
		Seqs:     b.seqs[0:n:n],
	}
}

// NewFromState rebuilds a basket from an exported image, adopting the
// state's vectors (pass a decoded, freshly allocated state — not one
// still shared with a live basket).
func NewFromState(name string, schema bat.Schema, st State) *Basket {
	b := New(name, schema)
	if st.Rows != nil && len(st.Rows.Cols) == len(b.cols) {
		b.cols = st.Rows.Cols
	}
	b.arrivals = st.Arrivals
	b.seqs = st.Seqs
	b.base = st.Base
	b.nextSeq = st.NextSeq
	b.totalIn = st.TotalIn
	b.totalDrop = st.Base // base only ever advances by dropping the prefix
	return b
}

// Cursor reports a consumer's absolute read cursor.
func (b *Basket) Cursor(id int) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.consumers[id]
	return cur, ok
}

// RegisterAt adds a consumer whose cursor starts at the given absolute
// position, clamped into the buffered range — the restore path's
// counterpart to Register, which starts at the current end.
func (b *Basket) RegisterAt(cursor int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	if cursor < b.base {
		cursor = b.base
	}
	if hi := b.base + int64(b.len()); cursor > hi {
		cursor = hi
	}
	b.consumers[id] = cursor
	return id
}

// Consume advances the consumer's cursor by n tuples and vacuums tuples
// every consumer has passed.
func (b *Basket) Consume(id int, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.consumers[id]
	if !ok {
		return
	}
	hi := b.base + int64(b.len())
	cur += n
	if cur > hi {
		cur = hi
	}
	b.consumers[id] = cur
	b.vacuumLocked()
}

// vacuumThreshold is how far the minimum cursor may run ahead of the base
// before the consumed prefix is physically dropped. Batching the drops
// amortizes the copy.
const vacuumThreshold = 4096

func (b *Basket) vacuumLocked() {
	if len(b.consumers) == 0 {
		// No queries bound: the basket would grow without bound, so drop
		// everything (nobody can ever read it).
		n := b.len()
		if n > 0 {
			b.dropPrefixLocked(n)
		}
		return
	}
	minCur := b.base + int64(b.len())
	for _, c := range b.consumers {
		if c < minCur {
			minCur = c
		}
	}
	if minCur-b.base >= vacuumThreshold {
		b.dropPrefixLocked(int(minCur - b.base))
	}
}

func (b *Basket) dropPrefixLocked(n int) {
	hi := b.len()
	for i, col := range b.cols {
		b.cols[i] = col.CopyRange(n, hi)
	}
	b.arrivals = b.arrivals.CopyRange(n, int(b.arrivals.Len())).(bat.Ints)
	b.seqs = b.seqs.CopyRange(n, int(b.seqs.Len())).(bat.Ints)
	b.base += int64(n)
	b.totalDrop += int64(n)
}

// Stats is a snapshot of the basket's counters, feeding the demo's
// analysis pane.
type Stats struct {
	Name      string
	Len       int   // tuples currently buffered
	TotalIn   int64 // tuples ever appended
	TotalDrop int64 // tuples dropped after full consumption
	Consumers int
	Paused    bool
	Shards    int // 1 for a plain basket, N for a sharded container
}

// Stats returns a snapshot of the basket's counters.
func (b *Basket) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Name:      b.name,
		Len:       b.len(),
		TotalIn:   b.totalIn,
		TotalDrop: b.totalDrop,
		Consumers: len(b.consumers),
		Paused:    b.paused,
		Shards:    1,
	}
}
