package datacell

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datacell/internal/metrics"
)

func TestTenantAdmissionControl(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 2})

	for i := 0; i < 2; i++ {
		mustExec(t, e, fmt.Sprintf(
			"REGISTER QUERY q%d TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]", i))
	}
	_, err := e.Exec("REGISTER QUERY q2 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	if err == nil {
		t.Fatal("third registration admitted past MaxQueries=2")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QuotaError, got %T: %v", err, err)
	}
	if qe.Tenant != "acme" || qe.Resource != "queries" || qe.Limit != 2 || qe.Used != 2 {
		t.Errorf("QuotaError fields: %+v", qe)
	}

	// A different tenant (and the untenanted path) are unaffected.
	mustExec(t, e, "REGISTER QUERY other TENANT beta AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	mustExec(t, e, "REGISTER QUERY free AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")

	st := e.TenantStats()
	if len(st) != 2 || st[0].Name != "acme" || st[1].Name != "beta" {
		t.Fatalf("TenantStats: %+v", st)
	}
	if st[0].Queries != 2 || st[0].RejectedQueries != 1 {
		t.Errorf("acme stats: %+v", st[0])
	}
}

func TestTenantQuotaReleasedOnDrop(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 1})

	mustExec(t, e, "REGISTER QUERY q0 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	if _, err := e.Exec("REGISTER QUERY q1 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]"); err == nil {
		t.Fatal("second registration admitted past MaxQueries=1")
	}
	mustExec(t, e, "DROP QUERY q0")
	// The drop released the slot: the same tenant registers again.
	r := mustExec(t, e, "REGISTER QUERY q1 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	if r.Query.Tenant() != "acme" {
		t.Errorf("Tenant() = %q", r.Query.Tenant())
	}
	if st := e.TenantStats()[0]; st.Queries != 1 {
		t.Errorf("after drop+register: %+v", st)
	}
}

func TestTenantSlotReleasedOnFailedRegistration(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 1})

	// A plan error after admission must release the reservation.
	if _, err := e.Exec("REGISTER QUERY bad TENANT acme AS SELECT avg(v) FROM ghost [SIZE 10 SLIDE 10]"); err == nil {
		t.Fatal("registration over unknown stream succeeded")
	}
	mustExec(t, e, "REGISTER QUERY ok TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
}

func TestTenantAppendRateLimit(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	// 1000 rows/s with a one-second burst: the first 1000 rows pass
	// untouched, the next 500 owe ~500ms.
	e.SetTenantQuota("acme", TenantQuota{MaxAppendRowsPerSec: 1000})

	row := func(ts int64) []any { return []any{time.UnixMicro(ts), 1.0} }
	batch := make([][]any, 100)
	for i := range batch {
		batch[i] = row(int64(i))
	}
	start := time.Now()
	for i := 0; i < 15; i++ { // 1500 rows total
		if err := e.AppendTenant("acme", "s", batch...); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond {
		t.Errorf("1500 rows at 1000 rows/s took %v; want >= ~500ms of throttling", elapsed)
	}
	st := e.TenantStats()[0]
	if st.AppendedRows != 1500 || st.ThrottledAppends == 0 || st.ThrottleWaitUsec == 0 {
		t.Errorf("throttle counters: %+v", st)
	}
}

func TestTenantLagBackpressure(t *testing.T) {
	e, clock := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")

	r := mustExec(t, e, "REGISTER QUERY q TENANT slow AS SELECT avg(v) FROM s [SIZE 2 SLIDE 2]")
	q := r.Query

	// Seal several windows without consuming: 5 windows of 2 rows. The lag
	// quota arms only afterwards, so this backlog feed is not itself
	// throttled.
	for i := 0; i < 10; i += 2 {
		if err := e.AppendTenant("slow", "s", []any{time.UnixMicro(clock.Load()), 1.0},
			[]any{time.UnixMicro(clock.Load()), 2.0}); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	}
	e.SetTenantQuota("slow", TenantQuota{MaxLagWindows: 3})
	if p := e.TenantStats()[0].LagWindows; p < 3 {
		t.Fatalf("want >= 3 pending results before backpressure check, got %d", p)
	}

	// The next tenant append must block until the consumer drains.
	released := make(chan struct{})
	go func() {
		_ = e.AppendTenant("slow", "s", []any{time.UnixMicro(clock.Load()), 3.0})
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("append returned while lag >= MaxLagWindows")
	case <-time.After(50 * time.Millisecond):
	}
	for len(q.Out()) > 0 { // drain the backlog; the blocked append releases
		<-q.Out()
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("append still blocked after backlog drained")
	}
	if st := e.TenantStats()[0]; st.ThrottledAppends == 0 {
		t.Errorf("backpressure not counted: %+v", st)
	}
}

// TestTenantThrottledResultsIdentical is the acceptance check: an
// over-quota sibling is rejected and a rate-limited tenant is throttled,
// while the in-quota tenant's results stay byte-identical to an
// unthrottled run of the same feed.
func TestTenantThrottledResultsIdentical(t *testing.T) {
	feed := func(e *Engine, tenant string) []string {
		var rows [][]any
		for i := 0; i < 40; i++ {
			rows = append(rows, []any{time.UnixMicro(int64(i + 1)), float64(i % 7)})
		}
		for i := 0; i < len(rows); i += 4 {
			var err error
			if tenant == "" {
				err = e.Append("s", rows[i:i+4]...)
			} else {
				err = e.AppendTenant(tenant, "s", rows[i:i+4]...)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return nil
	}

	run := func(quota *TenantQuota) []string {
		e, _ := newTestEngine(t)
		mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
		tenant := ""
		if quota != nil {
			tenant = "acme"
			e.SetTenantQuota("acme", *quota)
			e.SetTenantQuota("greedy", TenantQuota{MaxQueries: 0}) // unlimited sibling
		}
		reg := "REGISTER QUERY q AS SELECT sum(v), count(*) FROM s [SIZE 10 SLIDE 5]"
		if tenant != "" {
			reg = "REGISTER QUERY q TENANT acme AS SELECT sum(v), count(*) FROM s [SIZE 10 SLIDE 5]"
		}
		r := mustExec(t, e, reg)
		feed(e, tenant)
		e.Drain()
		return rowsOf(collect(e, r.Query))
	}

	baseline := run(nil)
	throttled := run(&TenantQuota{MaxQueries: 1, MaxAppendRowsPerSec: 500})
	if len(baseline) == 0 {
		t.Fatal("baseline produced no rows")
	}
	if strings.Join(baseline, "\n") != strings.Join(throttled, "\n") {
		t.Errorf("throttled results diverge from baseline:\nbaseline:\n%s\nthrottled:\n%s",
			strings.Join(baseline, "\n"), strings.Join(throttled, "\n"))
	}
}

func TestTenantSQLParsing(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, tenant FLOAT)")
	// "tenant" stays usable as a column name; TENANT after the query name
	// is the clause.
	r := mustExec(t, e, "REGISTER QUERY q TENANT acme AS SELECT avg(tenant) FROM s [SIZE 10 SLIDE 10]")
	if r.Query.Tenant() != "acme" {
		t.Errorf("Tenant() = %q", r.Query.Tenant())
	}
}

// TestEngineMetricsCollector scrapes a live engine through the registry
// and checks the output is valid Prometheus text covering every family
// group the ISSUE names: basket, query, group, scheduler, tenant.
func TestEngineMetricsCollector(t *testing.T) {
	e, clock := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 10})
	mustExec(t, e, "REGISTER QUERY q0 TENANT acme AS SELECT avg(v) FROM s [SIZE 4 SLIDE 4]")
	mustExec(t, e, "REGISTER QUERY q1 TENANT acme AS SELECT sum(v) FROM s [SIZE 4 SLIDE 4]")
	for i := 0; i < 16; i++ {
		if err := e.AppendTenant("acme", "s", []any{time.UnixMicro(clock.Load()), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()

	reg := metrics.NewRegistry()
	reg.MustRegister(e.MetricsCollector())
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if _, err := metrics.ParseText(strings.NewReader(text)); err != nil {
		t.Fatalf("scrape is not valid Prometheus text: %v\n%s", err, text)
	}
	for _, want := range []string{
		`datacell_basket_appended_tuples_total{stream="s"} 16`,
		`datacell_query_evals_total{query="q0"}`,
		`datacell_group_members`,
		`datacell_scheduler_workers 2`,
		`datacell_tenant_appended_rows_total{tenant="acme"} 16`,
		`datacell_tenant_queries{tenant="acme"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}
