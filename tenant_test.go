package datacell

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datacell/internal/metrics"
	"datacell/internal/receptor"
)

func TestTenantAdmissionControl(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 2})

	for i := 0; i < 2; i++ {
		mustExec(t, e, fmt.Sprintf(
			"REGISTER QUERY q%d TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]", i))
	}
	_, err := e.Exec("REGISTER QUERY q2 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	if err == nil {
		t.Fatal("third registration admitted past MaxQueries=2")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QuotaError, got %T: %v", err, err)
	}
	if qe.Tenant != "acme" || qe.Resource != "queries" || qe.Limit != 2 || qe.Used != 2 {
		t.Errorf("QuotaError fields: %+v", qe)
	}

	// A different tenant (and the untenanted path) are unaffected.
	mustExec(t, e, "REGISTER QUERY other TENANT beta AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	mustExec(t, e, "REGISTER QUERY free AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")

	st := e.TenantStats()
	if len(st) != 2 || st[0].Name != "acme" || st[1].Name != "beta" {
		t.Fatalf("TenantStats: %+v", st)
	}
	if st[0].Queries != 2 || st[0].RejectedQueries != 1 {
		t.Errorf("acme stats: %+v", st[0])
	}
}

func TestTenantQuotaReleasedOnDrop(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 1})

	mustExec(t, e, "REGISTER QUERY q0 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	if _, err := e.Exec("REGISTER QUERY q1 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]"); err == nil {
		t.Fatal("second registration admitted past MaxQueries=1")
	}
	mustExec(t, e, "DROP QUERY q0")
	// The drop released the slot: the same tenant registers again.
	r := mustExec(t, e, "REGISTER QUERY q1 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	if r.Query.Tenant() != "acme" {
		t.Errorf("Tenant() = %q", r.Query.Tenant())
	}
	if st := e.TenantStats()[0]; st.Queries != 1 {
		t.Errorf("after drop+register: %+v", st)
	}
}

func TestTenantSlotReleasedOnFailedRegistration(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 1})

	// A plan error after admission must release the reservation.
	if _, err := e.Exec("REGISTER QUERY bad TENANT acme AS SELECT avg(v) FROM ghost [SIZE 10 SLIDE 10]"); err == nil {
		t.Fatal("registration over unknown stream succeeded")
	}
	mustExec(t, e, "REGISTER QUERY ok TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
}

func TestTenantAppendRateLimit(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	// 1000 rows/s with a one-second burst: the first 1000 rows pass
	// untouched, the next 500 owe ~500ms.
	e.SetTenantQuota("acme", TenantQuota{MaxAppendRowsPerSec: 1000})

	row := func(ts int64) []any { return []any{time.UnixMicro(ts), 1.0} }
	batch := make([][]any, 100)
	for i := range batch {
		batch[i] = row(int64(i))
	}
	start := time.Now()
	for i := 0; i < 15; i++ { // 1500 rows total
		if err := e.AppendTenant("acme", "s", batch...); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond {
		t.Errorf("1500 rows at 1000 rows/s took %v; want >= ~500ms of throttling", elapsed)
	}
	st := e.TenantStats()[0]
	if st.AppendedRows != 1500 || st.ThrottledAppends == 0 || st.ThrottleWaitUsec == 0 {
		t.Errorf("throttle counters: %+v", st)
	}
}

func TestTenantLagBackpressure(t *testing.T) {
	e, clock := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")

	r := mustExec(t, e, "REGISTER QUERY q TENANT slow AS SELECT avg(v) FROM s [SIZE 2 SLIDE 2]")
	q := r.Query

	// Seal several windows without consuming: 5 windows of 2 rows. The lag
	// quota arms only afterwards, so this backlog feed is not itself
	// throttled.
	for i := 0; i < 10; i += 2 {
		if err := e.AppendTenant("slow", "s", []any{time.UnixMicro(clock.Load()), 1.0},
			[]any{time.UnixMicro(clock.Load()), 2.0}); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	}
	e.SetTenantQuota("slow", TenantQuota{MaxLagWindows: 3})
	if p := e.TenantStats()[0].LagWindows; p < 3 {
		t.Fatalf("want >= 3 pending results before backpressure check, got %d", p)
	}

	// The next tenant append must block until the consumer drains.
	released := make(chan struct{})
	go func() {
		_ = e.AppendTenant("slow", "s", []any{time.UnixMicro(clock.Load()), 3.0})
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("append returned while lag >= MaxLagWindows")
	case <-time.After(50 * time.Millisecond):
	}
	for len(q.Out()) > 0 { // drain the backlog; the blocked append releases
		<-q.Out()
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("append still blocked after backlog drained")
	}
	if st := e.TenantStats()[0]; st.ThrottledAppends == 0 {
		t.Errorf("backpressure not counted: %+v", st)
	}
}

// TestTenantThrottledResultsIdentical is the acceptance check: an
// over-quota sibling is rejected and a rate-limited tenant is throttled,
// while the in-quota tenant's results stay byte-identical to an
// unthrottled run of the same feed.
func TestTenantThrottledResultsIdentical(t *testing.T) {
	feed := func(e *Engine, tenant string) []string {
		var rows [][]any
		for i := 0; i < 40; i++ {
			rows = append(rows, []any{time.UnixMicro(int64(i + 1)), float64(i % 7)})
		}
		for i := 0; i < len(rows); i += 4 {
			var err error
			if tenant == "" {
				err = e.Append("s", rows[i:i+4])
			} else {
				err = e.AppendTenant(tenant, "s", rows[i:i+4]...)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return nil
	}

	run := func(quota *TenantQuota) []string {
		e, _ := newTestEngine(t)
		mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
		tenant := ""
		if quota != nil {
			tenant = "acme"
			e.SetTenantQuota("acme", *quota)
			e.SetTenantQuota("greedy", TenantQuota{MaxQueries: 0}) // unlimited sibling
		}
		reg := "REGISTER QUERY q AS SELECT sum(v), count(*) FROM s [SIZE 10 SLIDE 5]"
		if tenant != "" {
			reg = "REGISTER QUERY q TENANT acme AS SELECT sum(v), count(*) FROM s [SIZE 10 SLIDE 5]"
		}
		r := mustExec(t, e, reg)
		feed(e, tenant)
		e.Drain()
		return rowsOf(collect(e, r.Query))
	}

	baseline := run(nil)
	throttled := run(&TenantQuota{MaxQueries: 1, MaxAppendRowsPerSec: 500})
	if len(baseline) == 0 {
		t.Fatal("baseline produced no rows")
	}
	if strings.Join(baseline, "\n") != strings.Join(throttled, "\n") {
		t.Errorf("throttled results diverge from baseline:\nbaseline:\n%s\nthrottled:\n%s",
			strings.Join(baseline, "\n"), strings.Join(throttled, "\n"))
	}
}

func TestTenantSQLParsing(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, tenant FLOAT)")
	// "tenant" stays usable as a column name; TENANT after the query name
	// is the clause.
	r := mustExec(t, e, "REGISTER QUERY q TENANT acme AS SELECT avg(tenant) FROM s [SIZE 10 SLIDE 10]")
	if r.Query.Tenant() != "acme" {
		t.Errorf("Tenant() = %q", r.Query.Tenant())
	}
}

// TestEngineMetricsCollector scrapes a live engine through the registry
// and checks the output is valid Prometheus text covering every family
// group the ISSUE names: basket, query, group, scheduler, tenant.
func TestEngineMetricsCollector(t *testing.T) {
	e, clock := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	e.SetTenantQuota("acme", TenantQuota{MaxQueries: 10})
	mustExec(t, e, "REGISTER QUERY q0 TENANT acme AS SELECT avg(v) FROM s [SIZE 4 SLIDE 4]")
	mustExec(t, e, "REGISTER QUERY q1 TENANT acme AS SELECT sum(v) FROM s [SIZE 4 SLIDE 4]")
	for i := 0; i < 16; i++ {
		if err := e.AppendTenant("acme", "s", []any{time.UnixMicro(clock.Load()), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()

	reg := metrics.NewRegistry()
	reg.MustRegister(e.MetricsCollector())
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if _, err := metrics.ParseText(strings.NewReader(text)); err != nil {
		t.Fatalf("scrape is not valid Prometheus text: %v\n%s", err, text)
	}
	for _, want := range []string{
		`datacell_basket_appended_tuples_total{stream="s"} 16`,
		`datacell_query_evals_total{query="q0"}`,
		`datacell_group_members`,
		`datacell_scheduler_workers 2`,
		`datacell_tenant_appended_rows_total{tenant="acme"} 16`,
		`datacell_tenant_queries{tenant="acme"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

func TestSetTenantQuotaDDL(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	// Quotas land via DDL — the shape an -init script restores on restart.
	mustExec(t, e, "SET TENANT QUOTA acme MAX_QUERIES 1 APPEND_ROWS_PER_SEC 500 LAG_WINDOWS 4")
	st := e.TenantStats()
	if len(st) != 1 || st[0].Name != "acme" {
		t.Fatalf("TenantStats after DDL: %+v", st)
	}
	want := TenantQuota{MaxQueries: 1, MaxAppendRowsPerSec: 500, MaxLagWindows: 4}
	if st[0].Quota != want {
		t.Fatalf("quota = %+v, want %+v", st[0].Quota, want)
	}

	// The DDL-set quota is enforced exactly like SetTenantQuota.
	mustExec(t, e, "REGISTER QUERY q0 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	_, err := e.Exec("REGISTER QUERY q1 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QuotaError past DDL quota, got %v", err)
	}

	// The bare form clears every limit.
	mustExec(t, e, "SET TENANT QUOTA acme")
	mustExec(t, e, "REGISTER QUERY q1 TENANT acme AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10]")

	// And the whole flow scripts (ExecScript is the -init path).
	if _, err := e.ExecScript(`
		SET TENANT QUOTA beta MAX_QUERIES 2;
		REGISTER QUERY b0 TENANT beta AS SELECT avg(v) FROM s [SIZE 10 SLIDE 10];
	`); err != nil {
		t.Fatal(err)
	}
	for _, ts := range e.TenantStats() {
		if ts.Name == "beta" && ts.Quota.MaxQueries != 2 {
			t.Errorf("scripted beta quota: %+v", ts.Quota)
		}
	}
}

// TestTenantGatedReceptorIngest is the satellite regression check:
// receptor-path ingest into a stream whose registering query carries
// TENANT t is throttled through the same token bucket as AppendTenant —
// same row accounting, same throttle counters, same pacing.
func TestTenantGatedReceptorIngest(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM r1 (id INT, v FLOAT)")
	mustExec(t, e, "CREATE STREAM r2 (id INT, v FLOAT)")
	mustExec(t, e, "SET TENANT QUOTA gated APPEND_ROWS_PER_SEC 1000")
	mustExec(t, e, "SET TENANT QUOTA direct APPEND_ROWS_PER_SEC 1000")
	// Binding: a TENANT query over r1 puts r1's anonymous ingest on
	// tenant "gated"'s account.
	mustExec(t, e, "REGISTER QUERY g TENANT gated AS SELECT avg(v) FROM r1 [SIZE 100 SLIDE 100]")

	var csv strings.Builder
	rows := make([][]any, 0, 1500)
	for i := 0; i < 1500; i++ {
		fmt.Fprintf(&csv, "%d,%g\n", i, float64(i))
		rows = append(rows, []any{i, float64(i)})
	}

	// Feed both tenants concurrently (buckets are per-tenant): 1500 rows
	// at 1000 rows/s with a one-second burst owe ~500ms each.
	gatedBk, err := e.IngestAppender("r1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var gatedElapsed, directElapsed time.Duration
	done := make(chan error, 2)
	go func() {
		n, err := receptor.ReplayCSV(strings.NewReader(csv.String()), gatedBk, 100, e.Now)
		gatedElapsed = time.Since(start)
		if err == nil && n != 1500 {
			err = fmt.Errorf("replayed %d rows, want 1500", n)
		}
		done <- err
	}()
	go func() {
		var err error
		for i := 0; i < 1500 && err == nil; i += 100 {
			err = e.AppendTenant("direct", "r2", rows[i:i+100]...)
		}
		directElapsed = time.Since(start)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	var gated, direct TenantStats
	for _, st := range e.TenantStats() {
		switch st.Name {
		case "gated":
			gated = st
		case "direct":
			direct = st
		}
	}
	if gated.AppendedRows != direct.AppendedRows || gated.AppendedRows != 1500 {
		t.Errorf("row accounting differs: gated=%d direct=%d want 1500",
			gated.AppendedRows, direct.AppendedRows)
	}
	if gated.ThrottledAppends == 0 || gated.ThrottleWaitUsec == 0 {
		t.Errorf("receptor ingest was not throttled: %+v", gated)
	}
	if direct.ThrottledAppends == 0 {
		t.Errorf("AppendTenant baseline was not throttled: %+v", direct)
	}
	if gatedElapsed < 300*time.Millisecond || directElapsed < 300*time.Millisecond {
		t.Errorf("pacing differs from quota: gated=%v direct=%v, want both >= ~500ms", gatedElapsed, directElapsed)
	}

	// INSERT rides the same gate while the binding holds.
	mustExec(t, e, "INSERT INTO r1 VALUES (9000, 1.5)")
	for _, st := range e.TenantStats() {
		if st.Name == "gated" && st.AppendedRows != 1501 {
			t.Errorf("INSERT not charged to bound tenant: %+v", st)
		}
	}

	// Dropping the binding query releases the stream: ingest reverts to
	// the anonymous (uncharged, unthrottled) path.
	mustExec(t, e, "DROP QUERY g")
	if err := e.Append("r1", rows[:100]); err != nil {
		t.Fatal(err)
	}
	for _, st := range e.TenantStats() {
		if st.Name == "gated" && st.AppendedRows != 1501 {
			t.Errorf("append charged after binding released: %+v", st)
		}
	}
}
