package datacell

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"datacell/internal/emitter"
)

// Property: two identical continuous queries registered on the same
// stream receive identical result sequences — basket cursors isolate
// consumers, so sharing never changes semantics.
func TestQuickIdenticalQueriesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		e, _ := newTestEngine(t)
		mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		sql := fmt.Sprintf(
			"SELECT k, sum(v) AS t FROM s [SIZE %d SLIDE %d] GROUP BY k",
			4*(1+rng.Intn(4)), 1+rng.Intn(4))
		// Mixed modes on purpose: the two modes are proven equivalent, so
		// identical queries must agree regardless of mode.
		qa, err := e.Register("qa", sql, &RegisterOptions{Mode: ModeReeval})
		if err != nil {
			// Random geometry may be invalid (slide not dividing size).
			e.Close()
			continue
		}
		qb, err := e.Register("qb", sql, &RegisterOptions{Mode: ModeAuto})
		if err != nil {
			t.Fatal(err)
		}
		n := 10 + rng.Intn(60)
		for i := 0; i < n; i++ {
			if err := e.Append("s", []any{
				time.UnixMicro(int64(i)), rng.Intn(3), float64(rng.Intn(50)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		ra := normalized(collect(e, qa))
		rb := normalized(collect(e, qb))
		if len(ra) != len(rb) {
			t.Fatalf("iter %d: %d vs %d results", iter, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("iter %d result %d:\nqa: %s\nqb: %s", iter, i, ra[i], rb[i])
			}
		}
		e.Close()
	}
}

// Property: for a randomly drawn windowed query — scan or stream join,
// incremental or re-evaluation — a shared registration and its isolated
// twin emit identical result sequences: group routing, join-tail sharing
// and the private pipelines are interchangeable. This is the local arm of
// the differential harness (TestFabricDifferential cross-checks the same
// draw space against the shard fabric).
func TestQuickSharedIsolatedMixAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 12; iter++ {
		e, _ := newTestEngine(t)
		mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		mustExec(t, e, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
		slide := 2 * (1 + rng.Intn(3))
		size := slide * (1 + rng.Intn(3))
		var sql string
		switch rng.Intn(3) {
		case 0:
			sql = fmt.Sprintf("SELECT k, sum(v) AS t FROM s [SIZE %d SLIDE %d] GROUP BY k", size, slide)
		case 1:
			sql = fmt.Sprintf("SELECT s.k, count(*) AS n FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k GROUP BY s.k", size, slide, size, slide)
		default:
			sql = fmt.Sprintf("SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k", size, slide, size, slide)
		}
		mode := ModeIncremental
		if rng.Intn(2) == 1 {
			mode = ModeReeval
		}
		qs, err := e.Register("qs", sql, &RegisterOptions{Mode: mode})
		if err != nil {
			t.Fatalf("iter %d %q: %v", iter, sql, err)
		}
		qi, err := e.Register("qi", sql, &RegisterOptions{Mode: mode, Isolated: true})
		if err != nil {
			t.Fatal(err)
		}
		n := 40 + rng.Intn(80)
		for i := 0; i < n; i++ {
			stream := "s"
			if i%2 == 1 {
				stream = "r"
			}
			if err := e.Append(stream, []any{
				time.UnixMicro(int64(i)), rng.Intn(4), float64(rng.Intn(50)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		rs := normalized(collect(e, qs))
		ri := normalized(collect(e, qi))
		if len(rs) != len(ri) {
			t.Fatalf("iter %d %q mode=%v: shared %d evals, isolated %d", iter, sql, mode, len(rs), len(ri))
		}
		for i := range rs {
			if rs[i] != ri[i] {
				t.Fatalf("iter %d %q eval %d:\nshared:   %s\nisolated: %s", iter, sql, i, rs[i], ri[i])
			}
		}
		e.Close()
	}
}

// Property: a query registered mid-stream sees only tuples appended after
// registration (the paper's continuous-query semantics), and its results
// form a suffix-aligned view of an identical query registered earlier.
func TestLateRegistrationSeesOnlyNewTuples(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	early, _ := e.Register("early", "SELECT v FROM s", nil)
	for i := 0; i < 5; i++ {
		_ = e.Append("s", []any{time.UnixMicro(int64(i)), i})
	}
	e.Drain()
	late, _ := e.Register("late", "SELECT v FROM s", nil)
	for i := 5; i < 8; i++ {
		_ = e.Append("s", []any{time.UnixMicro(int64(i)), i})
	}
	eRows := rowsOf(collect(e, early))
	lRows := rowsOf(collect(e, late))
	if len(eRows) != 8 {
		t.Fatalf("early saw %d rows", len(eRows))
	}
	if len(lRows) != 3 || lRows[0] != "5" {
		t.Fatalf("late saw %v", lRows)
	}
}

// Property: appending in different batch splits never changes windowed
// results (slicing is batch-agnostic).
func TestQuickBatchSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]any, 40)
	for i := range rows {
		rows[i] = []any{time.UnixMicro(int64(i)), rng.Intn(4), float64(rng.Intn(100))}
	}
	sql := "SELECT k, count(*) AS n FROM s [SIZE 8 SLIDE 4] GROUP BY k"

	var want []string
	for trial := 0; trial < 8; trial++ {
		e, _ := newTestEngine(t)
		mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		q, err := e.Register("q", sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(rows); {
			take := 1 + rng.Intn(7)
			if pos+take > len(rows) {
				take = len(rows) - pos
			}
			if err := e.Append("s", rows[pos:pos+take]); err != nil {
				t.Fatal(err)
			}
			pos += take
		}
		got := normalized(collect(e, q))
		if trial == 0 {
			want = got
		} else if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d differs:\nwant %v\ngot  %v", trial, want, got)
		}
		e.Close()
	}
}

// normalized renders each result as its sorted row multiset, so group
// emission order (which legitimately differs between modes) is ignored.
func normalized(rs []emitter.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		rows := make([]string, r.Chunk.Rows())
		for j := range rows {
			rows[j] = fmt.Sprint(r.Chunk.Row(j))
		}
		sort.Strings(rows)
		out[i] = fmt.Sprint(rows)
	}
	return out
}
