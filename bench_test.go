package datacell

// One benchmark per experiment in DESIGN.md §5 (the demo scenarios E1–E7),
// plus ablation benches for the kernel design choices DESIGN.md calls out
// (bulk selection vs row-at-a-time, candidate-list pipelines, hash-join
// fast paths). The cmd/dcbench harness prints the corresponding tables;
// these benches expose the same measurements to `go test -bench`.
//
// Custom metrics: µs/slide is the paper's headline quantity (cost of one
// window evaluation); tuples/s is the ingestion throughput.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/expr"
	"datacell/internal/linearroad"
)

// feedSensor generates n (ts, k, v) tuples in batches.
func feedSensor(n, batch, nkeys int) []*bat.Chunk {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g)
			ks[i] = int64((g * 2654435761) % nkeys)
			if ks[i] < 0 {
				ks[i] += int64(nkeys)
			}
			vs[i] = float64(g%1000) * 0.5
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
		pos += take
	}
	return out
}

// runWindowed processes the chunks through one registered query and
// reports µs/slide and tuples/s.
func runWindowed(b *testing.B, sql string, mode Mode, chunks []*bat.Chunk, tuples int) {
	b.Helper()
	b.ReportAllocs()
	var evals int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		eng := New(&Options{Workers: 2})
		if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
			b.Fatal(err)
		}
		q, err := eng.Register("q", sql, &RegisterOptions{Mode: mode, NoChannel: true})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for _, c := range chunks {
			if err := eng.AppendChunk("s", c); err != nil {
				b.Fatal(err)
			}
		}
		eng.Drain()
		wall += time.Since(start)
		evals += q.Stats().Evals
		eng.Close()
	}
	if evals > 0 {
		b.ReportMetric(float64(wall.Microseconds())/float64(evals), "µs/slide")
	}
	b.ReportMetric(float64(tuples)*float64(b.N)/wall.Seconds(), "tuples/s")
}

// BenchmarkE1ReevalVsIncremental is experiment E1: the two execution
// modes on a grouped sliding-window aggregate (window 16Ki, slide 2Ki).
func BenchmarkE1ReevalVsIncremental(b *testing.B) {
	const w, s = 16384, 2048
	const n = w * 3
	chunks := feedSensor(n, s, 16)
	sql := fmt.Sprintf(
		"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k", w, s)
	b.Run("reeval", func(b *testing.B) { runWindowed(b, sql, ModeReeval, chunks, n) })
	b.Run("incremental", func(b *testing.B) { runWindowed(b, sql, ModeIncremental, chunks, n) })
}

// BenchmarkE2WindowStepSweep is experiment E2: fixed window, sweeping the
// slide from 1/16 of the window up to tumbling.
func BenchmarkE2WindowStepSweep(b *testing.B) {
	const w = 8192
	for _, parts := range []int64{16, 4, 1} {
		s := w / parts
		chunks := feedSensor(w*3, int(s), 16)
		sql := fmt.Sprintf("SELECT k, sum(v) AS t FROM s [SIZE %d SLIDE %d] GROUP BY k", w, s)
		b.Run(fmt.Sprintf("slide_%d/reeval", s), func(b *testing.B) {
			runWindowed(b, sql, ModeReeval, chunks, w*3)
		})
		b.Run(fmt.Sprintf("slide_%d/incremental", s), func(b *testing.B) {
			runWindowed(b, sql, ModeIncremental, chunks, w*3)
		})
	}
}

// BenchmarkE3ComplexQueries is experiment E3: simple select-project
// pipelines vs windowed stream⋈stream joins, both modes.
func BenchmarkE3ComplexQueries(b *testing.B) {
	const w, s = 2048, 512
	const n = w * 3
	spa := fmt.Sprintf("SELECT k, v FROM s [SIZE %d SLIDE %d] WHERE v > 100.0", w, s)
	chunks := feedSensor(n, s, 64)
	b.Run("spa/reeval", func(b *testing.B) { runWindowed(b, spa, ModeReeval, chunks, n) })
	b.Run("spa/incremental", func(b *testing.B) { runWindowed(b, spa, ModeIncremental, chunks, n) })

	join := fmt.Sprintf(
		"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
		w, s, w, s)
	runJoin := func(b *testing.B, mode Mode) {
		b.ReportAllocs()
		// Sparse keys (≈ one match per key pair): probe/build work, which
		// the pair cache saves, dominates over output materialization.
		cs := feedSensor(n, s, w)
		cr := feedSensor(n, s, w)
		for i := 0; i < b.N; i++ {
			eng := New(&Options{Workers: 2})
			_, _ = eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
			_, _ = eng.Exec("CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
			if _, err := eng.Register("q", join, &RegisterOptions{Mode: mode, NoChannel: true}); err != nil {
				b.Fatal(err)
			}
			for j := range cs {
				_ = eng.AppendChunk("s", cs[j])
				_ = eng.AppendChunk("r", cr[j])
			}
			eng.Drain()
			eng.Close()
		}
	}
	b.Run("join/reeval", func(b *testing.B) { runJoin(b, ModeReeval) })
	b.Run("join/incremental", func(b *testing.B) { runJoin(b, ModeIncremental) })
}

// BenchmarkE4StreamTableJoin is experiment E4: a continuous query joining
// the stream with a persistent dimension table of increasing size.
func BenchmarkE4StreamTableJoin(b *testing.B) {
	const n = 16384
	chunks := feedSensor(n, 1024, 4096)
	for _, dim := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("dim_%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := New(&Options{Workers: 2})
				_, _ = eng.Exec("CREATE TABLE dim (k INT, grp INT)")
				_, _ = eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
				ks := make(bat.Ints, dim)
				gs := make(bat.Ints, dim)
				for j := range ks {
					ks[j] = int64(j)
					gs[j] = int64(j % 32)
				}
				_ = eng.AppendTable("dim", &bat.Chunk{
					Schema: bat.NewSchema([]string{"k", "grp"}, []bat.Kind{bat.Int, bat.Int}),
					Cols:   []bat.Vector{ks, gs},
				})
				if _, err := eng.Register("q", `
					SELECT d.grp, count(*) AS c FROM s [SIZE 4096 SLIDE 1024]
					JOIN dim d ON s.k = d.k GROUP BY d.grp`,
					&RegisterOptions{NoChannel: true}); err != nil {
					b.Fatal(err)
				}
				for _, c := range chunks {
					_ = eng.AppendChunk("s", c)
				}
				eng.Drain()
				eng.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkE5QueryNetwork is experiment E5: scheduler scaling with the
// number of standing queries sharing one stream.
func BenchmarkE5QueryNetwork(b *testing.B) {
	const n = 8192
	chunks := feedSensor(n, 512, 16)
	for _, qn := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("queries_%d", qn), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := New(&Options{Workers: 4})
				_, _ = eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
				for j := 0; j < qn; j++ {
					sql := fmt.Sprintf(
						"SELECT k, count(*) AS n FROM s [SIZE 1024 SLIDE 256] GROUP BY k HAVING count(*) > %d", j%7)
					if _, err := eng.Register(fmt.Sprintf("q%03d", j), sql,
						&RegisterOptions{NoChannel: true}); err != nil {
						b.Fatal(err)
					}
				}
				for _, c := range chunks {
					_ = eng.AppendChunk("s", c)
				}
				eng.Drain()
				eng.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n)/float64(qn)*1e9, "ns/tuple/query")
		})
	}
}

// BenchmarkE6LinearRoad is experiment E6: the Linear Road query set over
// generated traffic, reporting achieved report rate.
func BenchmarkE6LinearRoad(b *testing.B) {
	cfg := linearroad.Config{
		Xways: 1, CarsPerXway: 500, DurationSec: 300,
		ReportEverySec: 30, AccidentProb: 0.005, Seed: 1,
	}
	chunks := linearroad.Generate(cfg)
	var reports int
	for _, c := range chunks {
		reports += c.Rows()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(&Options{Workers: 4})
		if _, err := eng.Exec(linearroad.CreateStreamSQL); err != nil {
			b.Fatal(err)
		}
		for name, sql := range map[string]string{
			"seg": linearroad.SegmentStatsSQL(),
			"cnt": linearroad.VehicleCountSQL(),
			"acc": linearroad.AccidentSQL(),
		} {
			if _, err := eng.Register(name, sql, &RegisterOptions{NoChannel: true}); err != nil {
				b.Fatal(err)
			}
		}
		for _, c := range chunks {
			_ = eng.AppendChunk("lr_pos", c)
		}
		eng.Drain()
		eng.AdvanceTime(int64(cfg.DurationSec+300) * 1_000_000)
		eng.Drain()
		eng.Close()
	}
	b.ReportMetric(float64(reports)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkE7AnalysisOverhead is experiment E7: the cost of the analysis
// pane's sampling relative to an unmonitored run.
func BenchmarkE7AnalysisOverhead(b *testing.B) {
	const n = 16384
	chunks := feedSensor(n, 512, 16)
	run := func(b *testing.B, sample bool) {
		for i := 0; i < b.N; i++ {
			eng := New(&Options{Workers: 2})
			_, _ = eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
			if _, err := eng.Register("q",
				"SELECT k, avg(v) AS m FROM s [SIZE 2048 SLIDE 512] GROUP BY k",
				&RegisterOptions{NoChannel: true}); err != nil {
				b.Fatal(err)
			}
			for j, c := range chunks {
				_ = eng.AppendChunk("s", c)
				if sample && j%4 == 0 {
					_ = eng.Stats()
				}
			}
			eng.Drain()
			eng.Close()
		}
	}
	b.Run("monitored", func(b *testing.B) { run(b, true) })
	b.Run("unmonitored", func(b *testing.B) { run(b, false) })
}

// --- Ablation benches: kernel design choices -----------------------------

// BenchmarkAblationSelect compares the bulk selection kernel against
// row-at-a-time evaluation of the same predicate — the columnar
// bulk-processing choice the architecture rests on.
func BenchmarkAblationSelect(b *testing.B) {
	const n = 1 << 16
	xs := make(bat.Ints, n)
	for i := range xs {
		xs[i] = int64(i % 1000)
	}
	b.Run("bulk", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			_ = algebra.Select(xs, nil, algebra.LT, bat.IntValue(500))
		}
	})
	b.Run("row_at_a_time", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			var out algebra.Sel
			for j := 0; j < n; j++ {
				if xs.Get(j).Compare(bat.IntValue(500)) < 0 {
					out = append(out, int32(j))
				}
			}
			_ = out
		}
	})
}

// BenchmarkAblationPredicate compares the candidate-list AND pipeline
// against the boolean-vector fallback for a conjunctive range predicate.
func BenchmarkAblationPredicate(b *testing.B) {
	const n = 1 << 16
	xs := make(bat.Ints, n)
	for i := range xs {
		xs[i] = int64(i % 1000)
	}
	c := &bat.Chunk{
		Schema: bat.NewSchema([]string{"a"}, []bat.Kind{bat.Int}),
		Cols:   []bat.Vector{xs},
	}
	col := &expr.Col{Idx: 0, K: bat.Int, Name: "a"}
	pred := &expr.Logic{Op: expr.And,
		L: &expr.Cmp{Op: algebra.GE, L: col, R: &expr.Const{V: bat.IntValue(100)}},
		R: &expr.Cmp{Op: algebra.LE, L: col, R: &expr.Const{V: bat.IntValue(400)}},
	}
	b.Run("candidate_pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = expr.EvalPred(pred, c, nil)
		}
	})
	b.Run("boolean_vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bv := pred.Eval(c, nil).(bat.Bools)
			var out algebra.Sel
			for j, v := range bv {
				if v {
					out = append(out, int32(j))
				}
			}
			_ = out
		}
	})
}

// BenchmarkAblationHashJoin compares the single-int-key fast path against
// the composite-key encoding on identical data.
func BenchmarkAblationHashJoin(b *testing.B) {
	const n = 1 << 14
	l := make(bat.Ints, n)
	r := make(bat.Ints, n)
	for i := range l {
		l[i] = int64(i % 4096)
		r[i] = int64((i * 7) % 4096)
	}
	pad := make(bat.Strs, n) // second key column forcing the composite path
	b.Run("int_fast_path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = algebra.HashJoin([]bat.Vector{l}, []bat.Vector{r}, nil, nil)
		}
	})
	b.Run("composite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = algebra.HashJoin(
				[]bat.Vector{l, pad}, []bat.Vector{r, pad}, nil, nil)
		}
	})
}

// BenchmarkIngestion measures raw basket append throughput (receptor
// path) with one standing query.
func BenchmarkIngestion(b *testing.B) {
	chunks := feedSensor(1<<14, 1024, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := New(&Options{Workers: 2})
		_, _ = eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		if _, err := eng.Register("q", "SELECT count(*) AS n FROM s [SIZE 4096 SLIDE 4096]",
			&RegisterOptions{NoChannel: true}); err != nil {
			b.Fatal(err)
		}
		for _, c := range chunks {
			_ = eng.AppendChunk("s", c)
		}
		eng.Drain()
		eng.Close()
	}
	b.ReportMetric(float64(1<<14)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkShardedIngestFire is the sharded-basket scaling benchmark:
// identical workload (parallel producers + a filtered grouped sliding-
// window aggregate) through 1-shard and 4-shard streams. The 4-shard run
// partitions appends across shard mutexes and executes the per-basic-
// window incremental pipelines of the shards concurrently, merging
// partials at epoch boundaries; on a 4+ core host it should sustain ≥2×
// the 1-shard tuples/s. TestShardedMatchesSingleBasket pins that the
// merged results are identical (order-insensitive).
func BenchmarkShardedIngestFire(b *testing.B) {
	const (
		producers = 4
		n         = 1 << 17
		batch     = 2048
		nkeys     = 512
	)
	perProd := feedSensor(n/producers, batch, nkeys)
	sql := "SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 16384 SLIDE 4096] WHERE v > 50.0 GROUP BY k"
	for _, shards := range []int{1, 4} {
		ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"
		if shards > 1 {
			ddl += fmt.Sprintf(" SHARD %d KEY k", shards)
		}
		b.Run(fmt.Sprintf("shards_%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := New(&Options{Workers: 4})
				if _, err := eng.Exec(ddl); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Register("q", sql,
					&RegisterOptions{Mode: ModeIncremental, NoChannel: true}); err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for _, c := range perProd {
							_ = eng.AppendChunk("s", c)
						}
					}()
				}
				wg.Wait()
				eng.Drain()
				eng.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkSharedSubtail is the shared-operator-DAG scaling benchmark:
// Q=16 standing queries over one stream whose pipelines share a heavy
// common prefix — a selective filter plus a grouped partial aggregate —
// and diverge only in their post-merge HAVING thresholds. The "memo" run
// resolves the prefix through the group's shared DAG (one evaluation per
// sealed basic window for all 16 members); "nomemo" makes every member
// evaluate it privately, which is exactly the PR-2 grouped baseline. The
// acceptance floor is memo ≥ 1.5× nomemo tuples/s — the DAG removes
// 15/16ths of the per-basic-window pipeline work, so the win holds even
// on a single core. TestSharedSubtailEquivalence pins that both paths
// produce byte-identical results.
func BenchmarkSharedSubtail(b *testing.B) {
	const (
		n     = 1 << 16
		batch = 2048
		nkeys = 16
		qn    = 16
	)
	chunks := feedSensor(n, batch, nkeys)
	for _, noMemo := range []bool{false, true} {
		label := "memo"
		if noMemo {
			label = "nomemo"
		}
		b.Run(fmt.Sprintf("%s/q_%d", label, qn), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := New(&Options{Workers: 4})
				if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < qn; j++ {
					sql := fmt.Sprintf(
						"SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 8192 SLIDE 2048] WHERE v > 100.0 GROUP BY k HAVING count(*) > %d", j%7)
					if _, err := eng.Register(fmt.Sprintf("q%02d", j), sql,
						&RegisterOptions{Mode: ModeIncremental, NoChannel: true, NoMemo: noMemo}); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, c := range chunks {
					_ = eng.AppendChunk("s", c)
				}
				eng.Drain()
				b.StopTimer()
				if i == 0 {
					if g := eng.Groups(); len(g) == 1 {
						hits, misses := g[0].MemoHits, g[0].MemoMisses
						if noMemo && (hits != 0 || misses != 0) {
							b.Fatalf("nomemo run used the DAG: hits=%d misses=%d", hits, misses)
						}
						if !noMemo && hits == 0 {
							b.Fatal("memo run recorded no hits")
						}
						b.ReportMetric(100*g[0].MemoHitRate(), "memo_hit_%")
					}
				}
				eng.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkSharedMerge16 is the shared-merge scaling benchmark: Q=16
// IDENTICAL sliding-window members — same filter, same grouped partial
// aggregate, same HAVING — forming one merge class. The "sharedmerge"
// run evaluates the full-window merge and the post-merge HAVING fragment
// once per sealed window for all 16 (the other 15 hit the merged-view
// memo); the "nosharedmerge" ablation keeps the pipeline DAG but merges
// per member — exactly the PR-3 grouped baseline, where each of the 16
// re-merges its own ring of shared partials. Many grouping keys make the
// merge stage heavy, so the win isolates what sharing past the merge
// boundary buys even on one core. TestSharedMergeOncePerWindow pins that
// both paths produce byte-identical results and that the class performs
// exactly one merge per sealed window.
func BenchmarkSharedMerge16(b *testing.B) {
	const (
		n     = 1 << 16
		batch = 2048
		nkeys = 2048
		qn    = 16
	)
	chunks := feedSensor(n, batch, nkeys)
	sql := "SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 16384 SLIDE 2048] WHERE v > 50.0 GROUP BY k HAVING count(*) > 2"
	for _, noSharedMerge := range []bool{false, true} {
		label := "sharedmerge"
		if noSharedMerge {
			label = "nosharedmerge"
		}
		b.Run(fmt.Sprintf("%s/q_%d", label, qn), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := New(&Options{Workers: 4})
				if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < qn; j++ {
					if _, err := eng.Register(fmt.Sprintf("q%02d", j), sql,
						&RegisterOptions{Mode: ModeIncremental, NoChannel: true,
							NoSharedMerge: noSharedMerge}); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, c := range chunks {
					_ = eng.AppendChunk("s", c)
				}
				eng.Drain()
				b.StopTimer()
				if i == 0 {
					if g := eng.Groups(); len(g) == 1 {
						if noSharedMerge && (g[0].MergeHits != 0 || g[0].MergeMisses != 0) {
							b.Fatalf("ablation run used the merge class: %+v", g[0])
						}
						if !noSharedMerge && g[0].MergeHits == 0 {
							b.Fatal("shared-merge run recorded no merge hits")
						}
						b.ReportMetric(100*g[0].MergeHitRate(), "merge_hit_%")
					}
				}
				eng.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkJoinShared16 is the join-tail-sharing benchmark: 16 identical
// grouped sliding-window joins over two streams, once through one join
// group (shared pair cache, join merge class, post-merge trie — the pair
// merge and grouped HAVING tail evaluate once per sealed window for the
// whole class) and once isolated (every member owns a private join group
// and repeats both). dcbench tracks the same pair as the
// joinshared16_vs_isolated16 derived ratio, floored ≥1.5× on multi-core
// runners.
func BenchmarkJoinShared16(b *testing.B) {
	const (
		n     = 1 << 14
		batch = 2048
		nkeys = 256
		qn    = 16
	)
	sChunks := feedSensor(n, batch, nkeys)
	rChunks := feedSensor(n, batch, nkeys)
	sql := "SELECT s.k, count(*) AS c, sum(s.v) AS sv FROM s [SIZE 4096 SLIDE 1024], r [SIZE 4096 SLIDE 1024] WHERE s.k = r.k GROUP BY s.k HAVING count(*) > 2"
	for _, isolated := range []bool{false, true} {
		label := "shared"
		if isolated {
			label = "isolated"
		}
		b.Run(fmt.Sprintf("%s/q_%d", label, qn), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := New(&Options{Workers: 4})
				for _, ddl := range []string{
					"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)",
					"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)",
				} {
					if _, err := eng.Exec(ddl); err != nil {
						b.Fatal(err)
					}
				}
				for j := 0; j < qn; j++ {
					if _, err := eng.Register(fmt.Sprintf("q%02d", j), sql,
						&RegisterOptions{Mode: ModeIncremental, NoChannel: true,
							Isolated: isolated}); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for c := range sChunks {
					_ = eng.AppendChunk("s", sChunks[c])
					_ = eng.AppendChunk("r", rChunks[c])
				}
				eng.Drain()
				b.StopTimer()
				if i == 0 && !isolated {
					if groups := eng.Groups(); len(groups) != 1 {
						b.Fatalf("shared run formed %d groups, want 1", len(groups))
					} else if g := groups[0]; g.MergeHits == 0 || g.PostHits == 0 {
						b.Fatalf("shared join run recorded no tail sharing: %+v", g)
					} else {
						b.ReportMetric(100*g.MergeHitRate(), "merge_hit_%")
						b.ReportMetric(100*g.PostHitRate(), "post_hit_%")
					}
				}
				eng.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(2*n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkQueryGroupFanout is the shared multi-query scaling benchmark:
// Q ∈ {1, 4, 16} continuous queries over one stream, once through the
// shared execution group (the stream is drained and sliced once, member
// tails fan out) and once isolated (every query keeps its own cursors and
// slicers — the pre-group engine). Grouped cost should be sub-linear in
// Q: at Q=16 on a multi-core host, grouped throughput should be ≥3× the
// isolated baseline. The equivalence tests in group_test.go pin that both
// paths produce identical results.
func BenchmarkQueryGroupFanout(b *testing.B) {
	const (
		n     = 1 << 16
		batch = 2048
		nkeys = 256
	)
	chunks := feedSensor(n, batch, nkeys)
	for _, qn := range []int{1, 4, 16} {
		for _, isolated := range []bool{false, true} {
			label := "grouped"
			if isolated {
				label = "isolated"
			}
			b.Run(fmt.Sprintf("%s/q_%d", label, qn), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// Setup (engine, registrations) and teardown stay outside
					// the timed region — like the dcbench harness — so the
					// tuples/s reflects ingest+fire only and stays comparable
					// across Q.
					b.StopTimer()
					eng := New(&Options{Workers: 4})
					if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
						b.Fatal(err)
					}
					for j := 0; j < qn; j++ {
						// An alert-style standing query per member: selective
						// filter + count, thresholds varying per query. The
						// tails are cheap, so the benchmark isolates what
						// grouping amortizes — the per-query drain/slice/merge
						// front end.
						sql := fmt.Sprintf(
							"SELECT count(*) AS n FROM s [SIZE 8192 SLIDE 2048] WHERE v > %d.0",
							400+(j%8)*12)
						if _, err := eng.Register(fmt.Sprintf("q%02d", j), sql,
							&RegisterOptions{Mode: ModeIncremental, NoChannel: true, Isolated: isolated}); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
					for _, c := range chunks {
						_ = eng.AppendChunk("s", c)
					}
					eng.Drain()
					b.StopTimer()
					eng.Close()
					b.StartTimer()
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n)/float64(qn)*1e9, "ns/tuple/query")
			})
		}
	}
}

// wideStream builds the fused-scan benchmark stream: (ts, k, v) plus
// payloadCols float payload columns, so per-operator intermediate chunks
// — what the fused executor never materializes — carry real copy cost.
func wideStream(n, batch, nkeys, payloadCols int) (ddl string, chunks []*bat.Chunk) {
	names := []string{"ts", "k", "v"}
	kinds := []bat.Kind{bat.Time, bat.Int, bat.Float}
	ddl = "CREATE STREAM w (ts TIMESTAMP, k INT, v FLOAT"
	for p := 1; p <= payloadCols; p++ {
		names = append(names, fmt.Sprintf("p%d", p))
		kinds = append(kinds, bat.Float)
		ddl += fmt.Sprintf(", p%d FLOAT", p)
	}
	ddl += ")"
	sch := bat.NewSchema(names, kinds)
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		cols := make([]bat.Vector, len(names))
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g)
			ks[i] = int64((g * 2654435761) % nkeys)
			if ks[i] < 0 {
				ks[i] += int64(nkeys)
			}
			vs[i] = float64(g%1000) * 0.5
		}
		cols[0], cols[1], cols[2] = ts, ks, vs
		for p := 3; p < len(cols); p++ {
			ps := make(bat.Floats, take)
			for i := 0; i < take; i++ {
				ps[i] = float64((pos+i+p)%977) * 0.25
			}
			cols[p] = ps
		}
		chunks = append(chunks, &bat.Chunk{Schema: sch, Cols: cols})
		pos += take
	}
	return ddl, chunks
}

// BenchmarkFusedScan is the fused-tail-executor benchmark: eight
// isolated incremental filtered grouped aggregates (thresholds varying
// per query) over one wide stream, fused (lazy selection views,
// slice-time predicate pushdown, cardinality-hinted hash aggregation —
// the default) vs chunked (NoFuse: a materialized intermediate chunk
// per operator). Isolated members each own their slicers and tails, so
// the fused work scales with Q while the shared ingest copy amortizes.
// The dcbench floor is fused ≥ 1.3× chunked tuples/s on every machine
// class; TestNoFuseAblationEquivalence pins that both paths produce
// byte-identical results.
func BenchmarkFusedScan(b *testing.B) {
	const (
		n     = 1 << 18
		batch = 8192
		nkeys = 64
	)
	ddl, chunks := wideStream(n, batch, nkeys, 16)
	for _, noFuse := range []bool{false, true} {
		label := "fused"
		if noFuse {
			label = "chunked"
		}
		noFuse := noFuse
		b.Run(label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := New(&Options{Workers: 1})
				if _, err := eng.Exec(ddl); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 8; j++ {
					sql := fmt.Sprintf(
						"SELECT k, sum(v) AS s, count(*) AS n FROM w [SIZE 8192 SLIDE 2048] WHERE v > %d.0 GROUP BY k", 300+j*25)
					opts := []RegisterOption{WithMode(ModeIncremental), Isolated(), NoChannel()}
					if noFuse {
						opts = append(opts, NoFuse())
					}
					if _, err := eng.RegisterQuery(fmt.Sprintf("q%d", j), sql, opts...); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, c := range chunks {
					_ = eng.Append("w", c)
				}
				eng.Drain()
				b.StopTimer()
				eng.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkHashAggPresize isolates the hash-aggregate pre-sizing win:
// algebra.Group grows its group-id table from the fixed 64-slot default,
// while GroupHint pre-sizes it from the observed cardinality — exactly
// what the factory feeds back from each pipeline's previous window.
func BenchmarkHashAggPresize(b *testing.B) {
	const (
		rows   = 1 << 15
		groups = 4096
	)
	ks := make(bat.Ints, rows)
	for i := range ks {
		ks[i] = int64((i * 2654435761) % groups)
		if ks[i] < 0 {
			ks[i] += groups
		}
	}
	keys := []bat.Vector{ks}
	for _, cfg := range []struct {
		label string
		hint  int
	}{{"default", 0}, {"presized", groups}} {
		cfg := cfg
		b.Run(cfg.label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := algebra.GroupHint(keys, nil, rows, cfg.hint)
				if g.N != groups {
					b.Fatalf("got %d groups, want %d", g.N, groups)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkPlanCache measures registration cost through the plan cache:
// warm registers one SQL text repeatedly (every registration past the
// first skips parse/bind/optimize/decompose), cold gives each
// registration a distinct threshold so every compile runs in full. The
// dcbench floor is warm ≥ 2× cold registrations/s.
func BenchmarkPlanCache(b *testing.B) {
	const regs = 512
	for _, warm := range []bool{true, false} {
		label := "cold"
		if warm {
			label = "warm"
		}
		warm := warm
		b.Run(label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := New(&Options{Workers: 1})
				if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < regs; j++ {
					thr := 100
					if !warm {
						thr = 100 + j
					}
					sql := fmt.Sprintf(
						"SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 8192 SLIDE 2048] WHERE v > %d.0 GROUP BY k HAVING count(*) > 2", thr)
					if _, err := eng.RegisterQuery(fmt.Sprintf("q%04d", j), sql,
						WithMode(ModeIncremental), NoChannel()); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				eng.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(regs)*float64(b.N)/b.Elapsed().Seconds(), "registrations/s")
		})
	}
}
