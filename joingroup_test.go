package datacell

// Tests for shared stream⋈stream join groups: incremental join queries
// over the same stream pair and slide granularity share two stream front
// ends, per-side operator DAGs, and — per join fingerprint — one pair
// cache. The equivalence invariant matches the single-stream groups: a
// member of a join group produces byte-identical output to the same query
// registered ISOLATED, provided both observe the same left/right
// basic-window interleaving (the tests drain between appends to pin it).

import (
	"fmt"
	"strings"
	"testing"

	"datacell/internal/bat"
)

// joinFeed builds paired (s, r) chunk sequences whose key overlap produces
// non-trivial join output.
func joinFeed(n, batch, nkeys int) (ls, rs []*bat.Chunk) {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	mk := func(seed int) []*bat.Chunk {
		var out []*bat.Chunk
		for pos := 0; pos < n; {
			take := batch
			if pos+take > n {
				take = n - pos
			}
			ts := make(bat.Times, take)
			ks := make(bat.Ints, take)
			vs := make(bat.Floats, take)
			for i := 0; i < take; i++ {
				g := pos + i
				ts[i] = int64(g) * 1000
				ks[i] = int64((g*seed + g) % nkeys)
				vs[i] = float64((g * seed) % 100)
			}
			out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
			pos += take
		}
		return out
	}
	return mk(3), mk(5)
}

// joinMemberSQL varies filters, join shapes and post-merge aggregates so
// the members have genuinely divergent pipelines and pair caches; i%4==0
// and i%4==3 are identical on purpose (they must share one pair cache).
func joinMemberSQL(i, size, slide int) string {
	switch i % 4 {
	case 0:
		return fmt.Sprintf(
			"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
			size, slide, size, slide)
	case 1:
		return fmt.Sprintf(
			"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k AND s.v > 20.0",
			size, slide, size, slide)
	case 2:
		return fmt.Sprintf(
			"SELECT s.k, count(*) AS n FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k GROUP BY s.k",
			size, slide, size, slide)
	default:
		return fmt.Sprintf(
			"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
			size, slide, size, slide)
	}
}

// feedPairwise appends s and r chunks alternately, draining after each
// append: every engine observes the canonical L0 R0 L1 R1 … basic-window
// interleaving, making byte-level comparison meaningful.
func feedPairwise(t *testing.T, eng *Engine, ls, rs []*bat.Chunk) {
	t.Helper()
	for i := range ls {
		if err := eng.AppendChunk("s", ls[i]); err != nil {
			t.Fatal(err)
		}
		eng.Drain()
		if err := eng.AppendChunk("r", rs[i]); err != nil {
			t.Fatal(err)
		}
		eng.Drain()
	}
}

// TestJoinGroupEquivalenceIsolated is the acceptance invariant: each of N
// join queries in one join group produces byte-identical results to the
// same query registered ISOLATED, on 1-shard and 4-shard streams.
func TestJoinGroupEquivalenceIsolated(t *testing.T) {
	const members = 6
	const size, slide = 32, 16
	ls, rs := joinFeed(192, slide, 11)
	ddls := [][2]string{
		{"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)",
			"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)"},
		{"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k",
			"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"},
	}
	for _, ddl := range ddls {
		// Isolated: all N queries on one engine, every one with its own
		// cursors, slicers and private pair cache.
		iso := New(&Options{Workers: 1})
		for _, d := range ddl {
			mustExecG(t, iso, d)
		}
		isoQs := make([]*Query, members)
		for i := 0; i < members; i++ {
			q, err := iso.Register(fmt.Sprintf("q%02d", i), joinMemberSQL(i, size, slide),
				&RegisterOptions{Isolated: true})
			if err != nil {
				t.Fatal(err)
			}
			if q.Grouped() {
				t.Fatalf("isolated member %d joined a group", i)
			}
			isoQs[i] = q
		}
		feedPairwise(t, iso, ls, rs)
		want := make([][]string, members)
		for i, q := range isoQs {
			want[i] = collectRendered(q)
			if len(want[i]) == 0 {
				t.Fatalf("ddl=%q isolated member %d emitted nothing", ddl[0], i)
			}
		}
		iso.Close()

		// Grouped: the same N queries share one join group.
		eng := New(&Options{Workers: 1})
		for _, d := range ddl {
			mustExecG(t, eng, d)
		}
		qs := make([]*Query, members)
		for i := 0; i < members; i++ {
			q, err := eng.Register(fmt.Sprintf("q%02d", i), joinMemberSQL(i, size, slide), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !q.Grouped() {
				t.Fatalf("member %d did not join the join group", i)
			}
			qs[i] = q
		}
		groups := eng.Groups()
		if len(groups) != 1 || groups[0].Kind != "join" || groups[0].Members != members {
			t.Fatalf("groups = %+v, want one join group of %d", groups, members)
		}
		feedPairwise(t, eng, ls, rs)
		for i, q := range qs {
			got := collectRendered(q)
			if len(got) != len(want[i]) {
				t.Fatalf("ddl=%q member %d: evals=%d, isolated=%d",
					ddl[0], i, len(got), len(want[i]))
			}
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("ddl=%q member %d eval %d diverges:\ngrouped:\n%s\nisolated:\n%s",
						ddl[0], i, j, got[j], want[i][j])
				}
			}
		}
		eng.Close()
	}
}

// TestJoinGroupSharedPairCache pins the sharing economics: N identical
// join queries in one group compute exactly as many basic-window pairs as
// one member alone — the pair cache is hit, never recomputed, for the
// other N-1 — and the group's DAG memoizes their (identical) side
// pipelines.
func TestJoinGroupSharedPairCache(t *testing.T) {
	const size, slide = 32, 16
	ls, rs := joinFeed(160, slide, 7)
	sql := fmt.Sprintf(
		"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k AND s.v > 10.0",
		size, slide, size, slide)
	run := func(members int) GroupInfo {
		eng := New(&Options{Workers: 1})
		defer eng.Close()
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
		for i := 0; i < members; i++ {
			if _, err := eng.Register(fmt.Sprintf("q%d", i), sql,
				&RegisterOptions{NoChannel: true}); err != nil {
				t.Fatal(err)
			}
		}
		feedPairwise(t, eng, ls, rs)
		g := eng.Groups()
		if len(g) != 1 {
			t.Fatalf("groups = %+v", g)
		}
		return g[0]
	}
	one := run(1)
	four := run(4)
	if one.PairsComputed == 0 {
		t.Fatal("no pairs computed at all")
	}
	if four.PairsComputed != one.PairsComputed {
		t.Errorf("4 identical members computed %d pairs, 1 member %d — pairs recomputed",
			four.PairsComputed, one.PairsComputed)
	}
	if four.PairCaches != 1 {
		t.Errorf("identical members should share one pair cache, got %d", four.PairCaches)
	}
	if four.MemoHits == 0 {
		t.Error("identical side pipelines produced no memo hits")
	}
	if four.DagNodes == 0 {
		t.Error("no DAG nodes registered for filtered side pipelines")
	}
}

// TestJoinGroupMemberPauseDrop: pausing one join member must not stall
// siblings or the shared front ends; a resumed member catches up with the
// same results. Dropping members one by one tears the group down with the
// last, releasing both baskets' cursors and subscriptions.
func TestJoinGroupMemberPauseDrop(t *testing.T) {
	const size, slide = 16, 16
	ls, rs := joinFeed(96, slide, 5)
	sql := fmt.Sprintf(
		"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
		size, slide, size, slide)
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
	bkS, _ := eng.Basket("s")
	bkR, _ := eng.Basket("r")
	baseSubsS, baseSubsR := bkS.Subscribers(), bkR.Subscribers()
	baseConsS, baseConsR := bkS.Consumers(), bkR.Consumers()

	qa, err := eng.Register("a", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := eng.Register("b", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	qb.Pause()
	feedPairwise(t, eng, ls, rs)
	live := collectSorted(qa)
	if len(live) == 0 {
		t.Fatal("live sibling emitted nothing while member paused")
	}
	if got := collectSorted(qb); len(got) != 0 {
		t.Fatalf("paused member emitted %d evals", len(got))
	}
	qb.Resume()
	eng.Drain()
	caught := collectSorted(qb)
	if fmt.Sprint(caught) != fmt.Sprint(live) {
		t.Fatalf("resumed member diverges:\nresumed %v\nlive    %v", caught, live)
	}

	qa.Stop()
	if g := eng.Groups(); len(g) != 1 || g[0].Members != 1 {
		t.Fatalf("after one drop: groups = %+v", g)
	}
	qb.Stop()
	if g := eng.Groups(); len(g) != 0 {
		t.Fatalf("after last drop: groups = %+v", g)
	}
	if got := bkS.Subscribers(); got != baseSubsS {
		t.Errorf("s append subscriptions leaked: %d, want %d", got, baseSubsS)
	}
	if got := bkR.Subscribers(); got != baseSubsR {
		t.Errorf("r append subscriptions leaked: %d, want %d", got, baseSubsR)
	}
	if got := bkS.Consumers(); got != baseConsS {
		t.Errorf("s basket consumers leaked: %d, want %d", got, baseConsS)
	}
	if got := bkR.Consumers(); got != baseConsR {
		t.Errorf("r basket consumers leaked: %d, want %d", got, baseConsR)
	}
	mustExecG(t, eng, "DROP STREAM s")
	mustExecG(t, eng, "DROP STREAM r")
}

// TestReevalJoinGroupEquivalence: a re-evaluation join whose plan
// decomposes joins the stream pair's join group (PR 4) — its full-window
// recompute is served by the shared pair cache — and must produce the
// same per-eval results (order-insensitive: the pair merge concatenates
// in pair order, a monolithic re-evaluation in hash-join order) as the
// same query registered ISOLATED, which still re-runs the whole plan.
// Mixed-mode sharing is pinned too: an incremental and a re-evaluation
// member with the same join fingerprint share one pair cache, computing
// no pair twice.
func TestReevalJoinGroupEquivalence(t *testing.T) {
	const size, slide = 32, 16
	ls, rs := joinFeed(192, slide, 9)
	sql := fmt.Sprintf(
		"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
		size, slide, size, slide)

	run := func(opts *RegisterOptions) [][]string {
		eng := New(&Options{Workers: 1})
		defer eng.Close()
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
		q, err := eng.Register("q", sql, opts)
		if err != nil {
			t.Fatal(err)
		}
		if opts.Isolated == q.Grouped() {
			t.Fatalf("Isolated=%v but Grouped=%v", opts.Isolated, q.Grouped())
		}
		if q.Mode() != "reeval" {
			t.Fatalf("mode = %q, want reeval", q.Mode())
		}
		feedPairwise(t, eng, ls, rs)
		return collectSorted(q)
	}
	grouped := run(&RegisterOptions{Mode: ModeReeval})
	isolated := run(&RegisterOptions{Mode: ModeReeval, Isolated: true})
	if len(grouped) == 0 {
		t.Fatal("grouped re-evaluation join emitted nothing")
	}
	if fmt.Sprint(grouped) != fmt.Sprint(isolated) {
		t.Fatalf("re-evaluation join diverges:\ngrouped  %v\nisolated %v", grouped, isolated)
	}

	// Mixed modes share the fingerprint-keyed pair cache.
	mixed := func(modes []Mode) GroupInfo {
		eng := New(&Options{Workers: 1})
		defer eng.Close()
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
		for i, mode := range modes {
			if _, err := eng.Register(fmt.Sprintf("q%d", i), sql,
				&RegisterOptions{Mode: mode, NoChannel: true}); err != nil {
				t.Fatal(err)
			}
		}
		feedPairwise(t, eng, ls, rs)
		g := eng.Groups()
		if len(g) != 1 {
			t.Fatalf("groups = %+v", g)
		}
		return g[0]
	}
	alone := mixed([]Mode{ModeIncremental})
	both := mixed([]Mode{ModeIncremental, ModeReeval})
	if both.Members != 2 || both.PairCaches != 1 {
		t.Fatalf("mixed-mode group = %+v, want 2 members sharing 1 pair cache", both)
	}
	if alone.PairsComputed == 0 || both.PairsComputed != alone.PairsComputed {
		t.Errorf("mixed modes computed %d pairs, single member %d — pairs recomputed across modes",
			both.PairsComputed, alone.PairsComputed)
	}
}

// TestPairCacheRetentionOnLeave is the regression test for the retention
// leak: the shared pair cache's horizon is the widest member extent, and
// before PR 4 it never shrank on Leave — a departed wide member kept
// pinning pairs for up to one extra window. Dropping the wide member must
// now recompute the horizon from the survivors and evict immediately,
// visible in the \groups pair-cache stats.
func TestPairCacheRetentionOnLeave(t *testing.T) {
	const slide = 10
	ls, rs := joinFeed(160, slide, 7)
	join := func(size int) string {
		return fmt.Sprintf(
			"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
			size, slide, size, slide)
	}
	eng := New(&Options{Workers: 1})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
	wide, err := eng.Register("wide", join(6*slide), &RegisterOptions{NoChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := eng.Register("narrow", join(2*slide), &RegisterOptions{NoChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	if wide.GroupKey() != narrow.GroupKey() {
		t.Fatalf("extents must share a join group: %q vs %q", wide.GroupKey(), narrow.GroupKey())
	}
	feedPairwise(t, eng, ls, rs)
	before := eng.Groups()[0]
	if before.PairCaches != 1 || before.CachedPairs == 0 {
		t.Fatalf("before drop: %+v", before)
	}
	wide.Stop()
	after := eng.Groups()[0]
	// The wide member held 6 generations per side (≈ 6x6 pairs); the
	// narrow survivor needs only 2 per side. Its Leave must shrink the
	// horizon and sweep the excess immediately — not after another window.
	if after.CachedPairs >= before.CachedPairs {
		t.Fatalf("pairs after wide Leave = %d, before = %d — retention did not shrink",
			after.CachedPairs, before.CachedPairs)
	}
	maxNarrow := (2 + 1) * (2 + 1)
	if after.CachedPairs > maxNarrow {
		t.Errorf("pairs after wide Leave = %d, want ≤ %d (narrow horizon)",
			after.CachedPairs, maxNarrow)
	}
	// And the surviving member keeps running off the shrunk cache.
	feedPairwise(t, eng, ls[:4], rs[:4])
	if g := eng.Groups()[0]; g.CachedPairs > maxNarrow {
		t.Errorf("pairs after more windows = %d, want ≤ %d", g.CachedPairs, maxNarrow)
	}
}

// TestJoinGroupKeyRules: different slides split join groups; mirrored
// stream order does not share a group (sides would swap roles); \groups
// surfaces the join kind.
func TestJoinGroupKeyRules(t *testing.T) {
	eng := New(&Options{Workers: 1})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
	reg := func(name, sql string) *Query {
		t.Helper()
		q, err := eng.Register(name, sql, &RegisterOptions{NoChannel: true})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	a := reg("a", "SELECT s.v, r.v FROM s [SIZE 32 SLIDE 16], r [SIZE 32 SLIDE 16] WHERE s.k = r.k")
	b := reg("b", "SELECT s.v, r.v FROM s [SIZE 32 SLIDE 8], r [SIZE 32 SLIDE 8] WHERE s.k = r.k")
	c := reg("c", "SELECT r.v, s.v FROM r [SIZE 32 SLIDE 16], s [SIZE 32 SLIDE 16] WHERE s.k = r.k")
	if a.GroupKey() == b.GroupKey() {
		t.Errorf("different slides must not share a join group: %q", a.GroupKey())
	}
	if a.GroupKey() == c.GroupKey() {
		t.Errorf("mirrored stream order must not share a join group: %q", a.GroupKey())
	}
	if !strings.Contains(a.GroupKey(), "⋈") {
		t.Errorf("join group key = %q", a.GroupKey())
	}
	for _, g := range eng.Groups() {
		if g.Kind != "join" {
			t.Errorf("group %q kind = %q, want join", g.Key, g.Kind)
		}
	}
}
