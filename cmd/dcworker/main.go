// Command dcworker runs one DataCell shard-fabric worker process: it
// dials a coordinator (cmd/datacell with -fabric-listen, or any embedded
// fabric.Coordinator), receives its shard-range assignment, runs the
// sharded front end — per-shard baskets, per-spec ShardSlicers,
// watermark-driven epoch sealing — for every exported stream, and ships
// sealed basic-window fragments back over the fabric. Connections are
// resumable: a dropped link redials and replays from the last
// acknowledged frame, so no window is lost or duplicated.
//
// Usage:
//
//	dcworker -join host:port -index 0 [-id name]
//	         [-snapshot-dir dir] [-snapshot-interval 500ms]
//	         [-metrics-listen addr]
//
// With -metrics-listen the worker serves a Prometheus-text /metrics
// endpoint with its applied-frame and snapshot cursors, snapshot age and
// frame-error counter (see docs/METRICS.md).
//
// With -snapshot-dir the worker periodically checkpoints its full slicing
// state (baskets, open epochs, session cursors) to dir/worker-<index>.snap
// and, after a crash, restores from it and replays only the delta from the
// coordinator's replay log — lossless recovery (see docs/RECOVERY.md).
//
// The worker exits when the coordinator says goodbye (coordinator Close),
// or on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datacell/internal/fabric"
	"datacell/internal/metrics"
)

func main() {
	join := flag.String("join", "", "coordinator fabric address (required)")
	index := flag.Int("index", 0, "worker slot index in the coordinator's partition layout")
	id := flag.String("id", "", "self-reported worker label (default w<index>)")
	snapDir := flag.String("snapshot-dir", "", "directory for durable state snapshots (empty: snapshots off, recovery replays full history)")
	snapEvery := flag.Duration("snapshot-interval", 500*time.Millisecond, "interval between periodic snapshots (with -snapshot-dir)")
	metricsListen := flag.String("metrics-listen", "",
		"serve a Prometheus-text /metrics endpoint on this address")
	dataListen := flag.String("data-listen", "",
		"receptor listener address producers append to directly (default: an ephemeral loopback port; \"none\" disables the direct plane)")
	flag.Parse()
	if *join == "" {
		fmt.Fprintln(os.Stderr, "dcworker: -join is required")
		os.Exit(2)
	}

	w := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator:   *join,
		Index:         *index,
		ID:            *id,
		SnapshotDir:   *snapDir,
		SnapshotEvery: *snapEvery,
		DataListen:    *dataListen,
	})
	fmt.Println(w.Describe())

	if *metricsListen != "" {
		reg := metrics.NewRegistry()
		reg.MustRegister(w.MetricsCollector())
		msrv, err := metrics.Serve(*metricsListen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcworker: metrics:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("dcworker: serving /metrics on %s\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("dcworker: signal received, shutting down")
		w.Close()
	case <-w.Done():
		fmt.Println("dcworker: coordinator said goodbye, shutting down")
		w.Close()
	}
}
