// Command dcmon connects to a running datacell instance (started with
// -listen) and renders the demo's monitoring panes in the terminal: the
// query network (Figure 3) and, per interval, derived rates (Figure 4's
// analysis pane). With -once it prints a single snapshot.
//
// Usage:
//
//	dcmon -addr host:port [-interval 2s] [-once] [-cmd '\network']
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"datacell/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4100", "datacell session server address")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	cmd := flag.String("cmd", `\network`, "command to run each interval")
	flag.Parse()

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcmon:", err)
		os.Exit(1)
	}
	defer c.Close()

	for {
		out, err := c.Call(*cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcmon:", err)
			os.Exit(1)
		}
		fmt.Printf("-- %s --\n%s\n", time.Now().Format(time.TimeOnly), out)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}
