// Command dcbench regenerates the paper's experiments (DESIGN.md §5,
// E1–E7) and prints one table per experiment — the reproduction harness
// behind EXPERIMENTS.md. It doubles as the CI benchmark harness: -bench
// runs the sharded-ingest and query-group-fanout scaling benchmarks,
// emits a BENCH_N.json report for the bench trajectory, and can compare
// against a previous report or assert the shard-scaling floor.
//
// Usage:
//
//	dcbench                 # run every experiment at default scale
//	dcbench -exp e1,e3      # selected experiments
//	dcbench -quick          # small inputs (CI-sized)
//	dcbench -bench -bench-out BENCH_2.json [-assert-shard-scaling]
//	dcbench -compare BENCH_1.json -against BENCH_2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"datacell/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments: e1..e7 or all")
	quick := flag.Bool("quick", false, "reduced input sizes")
	bench := flag.Bool("bench", false, "run the CI scaling benchmarks instead of the experiments")
	benchOut := flag.String("bench-out", "", "with -bench: write the JSON report to this file")
	assertShards := flag.Bool("assert-shard-scaling", false,
		"with -bench: fail if 4-shard ingest is >10% slower than 1-shard (multi-core hosts only)")
	compare := flag.String("compare", "", "previous BENCH_*.json to compare -against")
	against := flag.String("against", "", "current BENCH_*.json for -compare")
	flag.Parse()

	if *compare != "" {
		prev, err := experiments.ReadBenchReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cur, err := experiments.ReadBenchReport(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(experiments.CompareBenchReports(prev, cur))
		return
	}

	if *bench {
		rep := experiments.CIBench(*quick)
		fmt.Println(rep)
		if *benchOut != "" {
			if err := rep.WriteJSON(*benchOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		if *assertShards {
			ratio := rep.Derived["shard4_vs_shard1"]
			switch {
			case runtime.NumCPU() < 4:
				fmt.Printf("shard-scaling assertion skipped: %d CPU(s); 4-shard/1-shard = %.2fx\n",
					runtime.NumCPU(), ratio)
			case ratio < 0.9:
				fmt.Fprintf(os.Stderr,
					"FAIL: 4-shard ingest at %.2fx of 1-shard (floor 0.90x) on %d CPUs\n",
					ratio, runtime.NumCPU())
				os.Exit(1)
			default:
				fmt.Printf("shard-scaling assertion passed: 4-shard/1-shard = %.2fx\n", ratio)
			}
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }
	any := false

	if run("e1") {
		any = true
		sizes := []int64{1024, 4096, 16384, 65536}
		if *quick {
			sizes = []int64{1024, 4096}
		}
		fmt.Println(experiments.E1ReevalVsIncremental(sizes, 8))
	}
	if run("e2") {
		any = true
		size := int64(32768)
		parts := []int64{64, 16, 4, 2, 1}
		if *quick {
			size, parts = 4096, []int64{16, 4, 1}
		}
		fmt.Println(experiments.E2SlideSweep(size, parts))
	}
	if run("e3") {
		any = true
		size, slide := int64(8192), int64(1024)
		if *quick {
			size, slide = 1024, 256
		}
		fmt.Println(experiments.E3QueryComplexity(size, slide))
	}
	if run("e4") {
		any = true
		dims := []int{1000, 10000, 100000, 1000000}
		tuples := 1 << 17
		if *quick {
			dims, tuples = []int{1000, 10000}, 1<<14
		}
		fmt.Println(experiments.E4StreamTableJoin(dims, tuples))
	}
	if run("e5") {
		any = true
		counts := []int{1, 4, 16, 64, 256}
		tuples := 1 << 16
		if *quick {
			counts, tuples = []int{1, 4, 16}, 1<<13
		}
		fmt.Println(experiments.E5QueryNetwork(counts, tuples))
	}
	if run("e6") {
		any = true
		xways := []int{1, 2, 4}
		dur := 600
		if *quick {
			xways, dur = []int{1}, 300
		}
		fmt.Println(experiments.E6LinearRoad(xways, dur))
	}
	if run("e7") {
		any = true
		tuples, intervals := 1<<17, 8
		if *quick {
			tuples, intervals = 1<<14, 4
		}
		table, analysis := experiments.E7Analysis(tuples, intervals)
		fmt.Println(table)
		fmt.Println("full analysis pane:")
		fmt.Println(analysis)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "no such experiment %q (want e1..e7 or all)\n", *expFlag)
		os.Exit(1)
	}
}
