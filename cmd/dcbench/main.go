// Command dcbench regenerates the paper's experiments (DESIGN.md §5,
// E1–E7) and prints one table per experiment — the reproduction harness
// behind EXPERIMENTS.md. It doubles as the CI benchmark harness: -bench
// runs the sharded-ingest, query-group-fanout and shared-sub-tail scaling
// benchmarks (filter with -bench-match), emits a BENCH_N.json report for
// the bench trajectory, compares against a previous report (report-only,
// or as a ±tolerance regression gate with -gate), and asserts the scaling
// floors CI tracks.
//
// Usage:
//
//	dcbench                 # run every experiment at default scale
//	dcbench -exp e1,e3      # selected experiments
//	dcbench -quick          # small inputs (CI-sized)
//	dcbench -bench -bench-out BENCH_3.json [-bench-match 'shared_subtail'] [-assert-floors]
//	dcbench -compare BENCH_2.json -against BENCH_3.json [-gate] [-tol 0.10]
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"

	"datacell/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments: e1..e7 or all")
	quick := flag.Bool("quick", false, "reduced input sizes")
	bench := flag.Bool("bench", false, "run the CI scaling benchmarks instead of the experiments")
	benchOut := flag.String("bench-out", "", "with -bench: write the JSON report to this file")
	benchMatch := flag.String("bench-match", "",
		"with -bench: regexp selecting benchmark configurations by name (default all)")
	assertShards := flag.Bool("assert-shard-scaling", false,
		"with -bench: fail if 4-shard ingest is >10% slower than 1-shard (multi-core hosts only)")
	assertFloors := flag.Bool("assert-floors", false,
		"with -bench: assert the tracked scaling floors (shard4_vs_shard1 ≥ 0.9, fabric_direct_vs_local ≥ 1.0 and joinshared16_vs_isolated16 ≥ 1.5 on multi-core, grouped16_vs_isolated16 ≥ 1.5, memo16_vs_nomemo16 ≥ 1.5, sharedmerge16_vs_nosharedmerge16 ≥ 1.5, fused_vs_chunked ≥ 1.3, plancache_ratio ≥ 2.0, codec_delta_ratio and codec_dict_ratio ≥ 2.0)")
	compare := flag.String("compare", "", "previous BENCH_*.json to compare -against")
	against := flag.String("against", "", "current BENCH_*.json for -compare")
	history := flag.String("history", "",
		"render the bench trajectory in this directory of BENCH json points as markdown (floor breaches highlighted)")
	gate := flag.Bool("gate", false,
		"with -compare: fail if a tracked derived ratio regressed beyond the tolerance band")
	tol := flag.Float64("tol", 0.10, "with -gate: relative tolerance band")
	flag.Parse()

	if *history != "" {
		points, skipped, err := experiments.ReadBenchHistory(*history)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(experiments.HistoryMarkdown(points, skipped))
		return
	}

	if *compare != "" {
		prev, err := experiments.ReadBenchReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cur, err := experiments.ReadBenchReport(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(experiments.CompareBenchReports(prev, cur))
		if *gate {
			report, ok := experiments.GateBenchReports(prev, cur, *tol)
			fmt.Println(report)
			if !ok {
				fmt.Fprintln(os.Stderr, "FAIL: bench regression gate")
				os.Exit(1)
			}
		}
		return
	}

	if *bench {
		if _, err := regexp.Compile(*benchMatch); err != nil {
			fmt.Fprintf(os.Stderr, "bad -bench-match: %v\n", err)
			os.Exit(1)
		}
		rep := experiments.CIBench(*quick, *benchMatch)
		fmt.Println(rep)
		if *benchOut != "" {
			if err := rep.WriteJSON(*benchOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		fail := false
		assertFloor := func(key string, floor float64, multiCoreOnly bool) {
			ratio, ok := rep.Derived[key]
			switch {
			case !ok:
				fmt.Printf("floor %s skipped: not measured this run\n", key)
			case multiCoreOnly && runtime.NumCPU() < 4:
				fmt.Printf("floor %s skipped: %d CPU(s); measured %.2fx\n",
					key, runtime.NumCPU(), ratio)
			case ratio < floor:
				fmt.Fprintf(os.Stderr, "FAIL: %s = %.2fx (floor %.2fx) on %d CPUs\n",
					key, ratio, floor, runtime.NumCPU())
				fail = true
			default:
				fmt.Printf("floor %s passed: %.2fx (floor %.2fx)\n", key, ratio, floor)
			}
		}
		if *assertShards || *assertFloors {
			assertFloor("shard4_vs_shard1", 0.9, true)
		}
		if *assertFloors {
			assertFloor("grouped16_vs_isolated16", 1.5, false)
			assertFloor("memo16_vs_nomemo16", 1.5, false)
			assertFloor("sharedmerge16_vs_nosharedmerge16", 1.5, false)
			// The join-tail win is CPU saved in the merge and tail stages;
			// on a 1-core container scheduler contention between the 16
			// isolated twins can mask it, so the floor gates only where
			// cores allow the baseline to actually run wide.
			assertFloor("joinshared16_vs_isolated16", 1.5, true)
			// The direct-receptor fabric must at least match local
			// throughput when cores allow real parallelism; on a 1-core
			// container the loopback fabric and the engine fight for the
			// same CPU, so the floor is skipped (report-only) there.
			assertFloor("fabric_direct_vs_local", 1.0, true)
			// Fusion and the plan cache are single-core wins — fewer
			// intermediate copies, fewer compiles — so their floors hold
			// on every machine class, 1-core CI containers included.
			assertFloor("fused_vs_chunked", 1.3, false)
			assertFloor("plancache_ratio", 2.0, false)
			// The codec ratios are deterministic byte counts — no machine
			// class caveat.
			assertFloor("codec_delta_ratio", 2.0, false)
			assertFloor("codec_dict_ratio", 2.0, false)
		}
		if fail {
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }
	any := false

	if run("e1") {
		any = true
		sizes := []int64{1024, 4096, 16384, 65536}
		if *quick {
			sizes = []int64{1024, 4096}
		}
		fmt.Println(experiments.E1ReevalVsIncremental(sizes, 8))
	}
	if run("e2") {
		any = true
		size := int64(32768)
		parts := []int64{64, 16, 4, 2, 1}
		if *quick {
			size, parts = 4096, []int64{16, 4, 1}
		}
		fmt.Println(experiments.E2SlideSweep(size, parts))
	}
	if run("e3") {
		any = true
		size, slide := int64(8192), int64(1024)
		if *quick {
			size, slide = 1024, 256
		}
		fmt.Println(experiments.E3QueryComplexity(size, slide))
	}
	if run("e4") {
		any = true
		dims := []int{1000, 10000, 100000, 1000000}
		tuples := 1 << 17
		if *quick {
			dims, tuples = []int{1000, 10000}, 1<<14
		}
		fmt.Println(experiments.E4StreamTableJoin(dims, tuples))
	}
	if run("e5") {
		any = true
		counts := []int{1, 4, 16, 64, 256}
		tuples := 1 << 16
		if *quick {
			counts, tuples = []int{1, 4, 16}, 1<<13
		}
		fmt.Println(experiments.E5QueryNetwork(counts, tuples))
	}
	if run("e6") {
		any = true
		xways := []int{1, 2, 4}
		dur := 600
		if *quick {
			xways, dur = []int{1}, 300
		}
		fmt.Println(experiments.E6LinearRoad(xways, dur))
	}
	if run("e7") {
		any = true
		tuples, intervals := 1<<17, 8
		if *quick {
			tuples, intervals = 1<<14, 4
		}
		table, analysis := experiments.E7Analysis(tuples, intervals)
		fmt.Println(table)
		fmt.Println("full analysis pane:")
		fmt.Println(analysis)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "no such experiment %q (want e1..e7 or all)\n", *expFlag)
		os.Exit(1)
	}
}
