// Command datacell runs an interactive DataCell instance: a SQL shell on
// stdin with the demo's control commands (plan inspection, query network,
// pause/resume), optionally also serving the same protocol over TCP for
// cmd/dcmon and remote clients, and optionally opening CSV receptors for
// streams.
//
// Usage:
//
//	datacell [-listen addr] [-metrics-listen addr] [-receptor stream=addr]...
//	         [-init file.sql]
//	         [-fabric-listen addr -fabric-workers n [-fabric-export stream]...]
//
// With -metrics-listen the instance serves a Prometheus-text /metrics
// endpoint covering basket occupancy and rates, query latencies, shared-
// group memo effectiveness, scheduler depths, tenant accounting and —
// when also a coordinator — fabric session health (see docs/METRICS.md).
//
// With -fabric-listen the instance doubles as a shard-fabric coordinator:
// exported streams' shard sets partition across dcworker processes, which
// run the sharded front ends and ship sealed basic windows back (see
// ARCHITECTURE.md, "Distributed shard fabric").
//
// Example session:
//
//	> CREATE STREAM s (ts TIMESTAMP, v FLOAT);
//	> REGISTER QUERY avg5 AS SELECT avg(v) FROM s [SIZE 100 SLIDE 20];
//	> \cplan avg5
//	> \network
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"datacell"
	"datacell/internal/basket"
	"datacell/internal/fabric"
	"datacell/internal/factory"
	"datacell/internal/metrics"
	"datacell/internal/monitor"
	"datacell/internal/receptor"
	"datacell/internal/scheduler"
	"datacell/internal/server"
)

type receptorFlags []string

func (r *receptorFlags) String() string { return strings.Join(*r, ",") }
func (r *receptorFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	listen := flag.String("listen", "", "also serve the session protocol on this TCP address")
	initFile := flag.String("init", "", "SQL script to execute at startup")
	workers := flag.Int("workers", 4, "scheduler worker pool size")
	fabricListen := flag.String("fabric-listen", "",
		"run as shard-fabric coordinator: serve dcworker connections on this address")
	fabricWorkers := flag.Int("fabric-workers", 2,
		"with -fabric-listen: worker process count the shard ranges partition across")
	fabricFlushBytes := flag.Int("fabric-flush-bytes", 64<<10,
		"with -fabric-listen: staged append bytes per worker lane before a batch ships")
	fabricFlushDelay := flag.Duration("fabric-flush-delay", 2*time.Millisecond,
		"with -fabric-listen: max time appends wait in a lane before a batch ships")
	fabricNoDirect := flag.Bool("fabric-no-direct", false,
		"with -fabric-listen: do not dial worker receptors; all traffic rides the control links")
	metricsListen := flag.String("metrics-listen", "",
		"serve a Prometheus-text /metrics endpoint on this address")
	var receptors receptorFlags
	flag.Var(&receptors, "receptor", "open a CSV receptor: stream=host:port (repeatable)")
	var fabricExports receptorFlags
	flag.Var(&fabricExports, "fabric-export",
		"with -fabric-listen: export a stream's shards to the fabric (repeatable; after -init DDL)")
	flag.Parse()

	eng := datacell.New(&datacell.Options{Workers: *workers})
	defer eng.Close()

	if *initFile != "" {
		src, err := os.ReadFile(*initFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "init:", err)
			os.Exit(1)
		}
		if _, err := eng.ExecScript(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "init:", err)
			os.Exit(1)
		}
		fmt.Printf("executed %s\n", *initFile)
	}

	var coord *fabric.Coordinator
	if *fabricListen != "" {
		var err error
		coord, err = fabric.NewCoordinator(eng, fabric.Options{
			Listen:     *fabricListen,
			Workers:    *fabricWorkers,
			FlushBytes: *fabricFlushBytes,
			FlushDelay: *fabricFlushDelay,
			NoDirect:   *fabricNoDirect,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabric:", err)
			os.Exit(1)
		}
		defer coord.Close()
		for _, name := range fabricExports {
			if err := coord.ExportStream(name); err != nil {
				fmt.Fprintln(os.Stderr, "fabric:", err)
				os.Exit(1)
			}
			fmt.Printf("fabric: stream %s exported\n", name)
		}
		fmt.Printf("fabric coordinator on %s (expecting %d workers; start them with: dcworker -join %s -index <i>)\n",
			coord.Addr(), *fabricWorkers, coord.Addr())
	} else if len(fabricExports) > 0 {
		fmt.Fprintln(os.Stderr, "-fabric-export requires -fabric-listen")
		os.Exit(1)
	}

	for _, spec := range receptors {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -receptor %q (want stream=addr)\n", spec)
			os.Exit(1)
		}
		// The gated appender throttles network ingest on tenant-bound
		// streams exactly like AppendTenant (see docs/OPERATIONS.md).
		bk, err := eng.IngestAppender(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r, err := receptor.ListenTCP(addr, bk, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer r.Close()
		fmt.Printf("receptor for stream %s on %s\n", name, r.Addr())
	}

	if *metricsListen != "" {
		reg := metrics.NewRegistry()
		reg.MustRegister(eng.MetricsCollector())
		// The monitor supplies the derived per-interval rates; a bounded
		// lifetime sampler feeds it once a second.
		mon := monitor.NewCollector(func() ([]basket.Stats, []factory.Stats) {
			st := eng.Stats()
			return st.Baskets, st.Queries
		})
		mon.SetLimit(4)
		reg.MustRegister(mon.MetricsCollector())
		sampler := scheduler.NewTicker(time.Second, func(time.Time) { mon.Sample(eng.Now()) })
		defer sampler.Stop()
		if coord != nil {
			reg.MustRegister(coord.MetricsCollector())
		}
		msrv, err := metrics.Serve(*metricsListen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("serving /metrics on %s\n", msrv.Addr())
	}

	if *listen != "" {
		srv, err := server.Listen(eng, *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving session protocol on %s\n", srv.Addr())
	}

	fmt.Println("DataCell-Go — type \\help for commands, \\quit to exit")
	sess := server.NewSession(eng)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	fmt.Print("> ")
	for sc.Scan() {
		out, quit := sess.Dispatch(sc.Text())
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return
		}
		fmt.Print("> ")
	}
}
