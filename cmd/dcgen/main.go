// Command dcgen generates workload CSV files for DataCell's receptors —
// the demo's "various predefined data files which can be streamed in the
// system".
//
// Workloads:
//
//	sensor      (ts, k, v): uniform keys, smooth values
//	zipf        (ts, k, v): zipf-skewed keys (hot-key stress)
//	linearroad  (ts, vid, speed, xway, lane, dir, seg, pos)
//	multitenant not a CSV: runs the multi-tenant standing-query harness
//	            in-process — templated queries from the linearroad /
//	            network-monitor / weblog archetypes spread across tenants
//	            with fair-share quotas — and prints queries_per_core and
//	            the p99 window-seal latency (ROADMAP item 5)
//
// Usage:
//
//	dcgen -workload sensor -n 100000 [-keys 64] [-seed 1] [-out file.csv]
//	dcgen -workload linearroad -xways 2 -cars 500 -duration 600
//	dcgen -workload multitenant -tenants 8 -queries 512 [-n 16384]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"datacell/internal/experiments"
	"datacell/internal/linearroad"
)

func main() {
	workload := flag.String("workload", "sensor", "sensor | zipf | linearroad | multitenant")
	n := flag.Int("n", 100000, "number of tuples (sensor, zipf)")
	keys := flag.Int("keys", 64, "distinct keys (sensor, zipf)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	xways := flag.Int("xways", 1, "linearroad: expressways")
	cars := flag.Int("cars", 500, "linearroad: cars per expressway")
	duration := flag.Int("duration", 600, "linearroad: simulated seconds")
	tenants := flag.Int("tenants", 8, "multitenant: tenant count")
	queries := flag.Int("queries", 512, "multitenant: standing queries to register across tenants")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *workload {
	case "sensor":
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *n; i++ {
			fmt.Fprintf(bw, "%d,%d,%.3f\n", i, rng.Intn(*keys), rng.Float64()*100)
		}
	case "zipf":
		rng := rand.New(rand.NewSource(*seed))
		z := rand.NewZipf(rng, 1.2, 1, uint64(*keys-1))
		for i := 0; i < *n; i++ {
			fmt.Fprintf(bw, "%d,%d,%.3f\n", i, z.Uint64(), rng.Float64()*100)
		}
	case "multitenant":
		// Not a CSV generator: run the harness and print its report. -n is
		// per-archetype-stream tuples; the default 100000 is CI-hostile, so
		// the harness clamps to a bench-sized feed unless asked otherwise.
		feed := *n
		if feed > 1<<16 {
			feed = 1 << 14
		}
		fmt.Fprint(bw, experiments.MultiTenant(*tenants, *queries, feed, 2048))
	case "linearroad":
		cfg := linearroad.Config{
			Xways: *xways, CarsPerXway: *cars, DurationSec: *duration,
			ReportEverySec: 30, AccidentProb: 0.005, Seed: *seed,
		}
		for _, c := range linearroad.Generate(cfg) {
			rows := c.Rows()
			for i := 0; i < rows; i++ {
				row := c.Row(i)
				// ts,vid,speed,xway,lane,dir,seg,pos — ts as raw µs.
				fmt.Fprintf(bw, "%d,%d,%.2f,%d,%d,%d,%d,%d\n",
					row[0].I, row[1].I, row[2].F, row[3].I,
					row[4].I, row[5].I, row[6].I, row[7].I)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(1)
	}
}
