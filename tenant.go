package datacell

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

// TenantQuota bounds one tenant's footprint on the engine. The zero
// value means unlimited on every axis — tenants exist for accounting
// even without quotas, and each limit arms independently.
//
// Quotas are the admission-control half of multi-tenancy; the isolation
// half (shared execution groups, per-member tails) means one tenant's
// queries never stall another's regardless of quota settings. See
// docs/OPERATIONS.md for tuning guidance.
type TenantQuota struct {
	// MaxQueries caps concurrently registered continuous queries.
	// Registration past the cap fails with a *QuotaError; DROP QUERY (or
	// Query.Stop) releases the slot. 0 means unlimited.
	MaxQueries int
	// MaxAppendRowsPerSec rate-limits the tenant's ingest through
	// AppendTenant/AppendChunkTenant with a token bucket (burst of one
	// second's allowance). Over-rate appends block until tokens refill —
	// backpressure, not an error. 0 means unlimited.
	MaxAppendRowsPerSec float64
	// MaxLagWindows arms consumer-lag backpressure: when the tenant's
	// slowest result consumer leaves this many results unconsumed in a
	// query's Out channel, the tenant's own appends block until the
	// backlog drains below the threshold. Sibling tenants' appends are
	// unaffected — the whole point of per-tenant backpressure. 0 disables.
	MaxLagWindows int
}

// QuotaError is the typed rejection of an over-quota operation.
// Admission control returns it from Register (resource "queries");
// errors.As-match it to distinguish quota rejections from plan errors.
type QuotaError struct {
	Tenant   string
	Resource string // "queries"
	Limit    int
	Used     int
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("datacell: tenant %q over quota: %s limit %d reached (in use: %d)",
		e.Tenant, e.Resource, e.Limit, e.Used)
}

// TenantStats is one tenant's observable state — the backing of the
// \tenants pane and the datacell_tenant_* metric families.
type TenantStats struct {
	Name    string
	Quota   TenantQuota
	Queries int // registered + in-flight reservations
	// LagWindows is the current backlog of the slowest consumer across
	// the tenant's queries (unconsumed results in an Out channel).
	LagWindows int
	// RejectedQueries counts registrations refused by admission control.
	RejectedQueries int64
	// AppendedRows counts rows ingested through the tenant append path.
	AppendedRows int64
	// ThrottledAppends counts appends that blocked on the rate limiter or
	// on lag backpressure; ThrottleWaitUsec is the total time they waited.
	ThrottledAppends int64
	ThrottleWaitUsec int64
}

// tenantState is the engine-side record of one tenant. Its mutex is
// leaf-level: never held while calling into the engine, the scheduler or
// a basket.
type tenantState struct {
	name string

	mu      sync.Mutex
	quota   TenantQuota
	used    int // registered queries + in-flight register reservations
	queries map[string]*Query

	rejected     int64
	appendedRows int64
	throttled    int64
	throttleWait int64 // µs

	// Token bucket for MaxAppendRowsPerSec, on the wall clock (logical
	// engine clocks injected by tests would stall a sleeping bucket).
	tokens     float64
	lastRefill int64 // wall µs; 0 until first use
}

// tenantState returns (creating if needed) the named tenant's record.
func (e *Engine) tenantState(name string) *tenantState {
	e.tenantMu.Lock()
	defer e.tenantMu.Unlock()
	if e.tenants == nil {
		e.tenants = map[string]*tenantState{}
	}
	ts, ok := e.tenants[name]
	if !ok {
		ts = &tenantState{name: name, queries: map[string]*Query{}}
		e.tenants[name] = ts
	}
	return ts
}

// SetTenantQuota installs (or replaces) a tenant's quota. Creating the
// tenant record implicitly, it can run before or after the tenant's
// first registration; lowering MaxQueries below the current count
// affects only future registrations.
func (e *Engine) SetTenantQuota(tenant string, q TenantQuota) {
	ts := e.tenantState(tenant)
	ts.mu.Lock()
	ts.quota = q
	ts.mu.Unlock()
}

// TenantNames lists tenants that have registered queries, appended rows
// or received quotas, sorted.
func (e *Engine) TenantNames() []string {
	e.tenantMu.Lock()
	defer e.tenantMu.Unlock()
	out := make([]string, 0, len(e.tenants))
	for n := range e.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TenantStats snapshots every tenant's counters, sorted by name.
func (e *Engine) TenantStats() []TenantStats {
	var out []TenantStats
	for _, n := range e.TenantNames() {
		ts := e.tenantState(n)
		out = append(out, ts.stats())
	}
	return out
}

func (ts *tenantState) stats() TenantStats {
	lag := ts.lag()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return TenantStats{
		Name:             ts.name,
		Quota:            ts.quota,
		Queries:          ts.used,
		LagWindows:       lag,
		RejectedQueries:  ts.rejected,
		AppendedRows:     ts.appendedRows,
		ThrottledAppends: ts.throttled,
		ThrottleWaitUsec: ts.throttleWait,
	}
}

// admitQuery reserves one query slot, or rejects with a *QuotaError when
// the tenant is at MaxQueries. The reservation is taken before the plan
// is even parsed so concurrent registrations cannot overshoot the cap;
// the caller must pair it with attachQuery (success) or releaseSlot
// (any failure path).
func (ts *tenantState) admitQuery() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.quota.MaxQueries > 0 && ts.used >= ts.quota.MaxQueries {
		ts.rejected++
		return &QuotaError{Tenant: ts.name, Resource: "queries",
			Limit: ts.quota.MaxQueries, Used: ts.used}
	}
	ts.used++
	return nil
}

// attachQuery binds a successfully registered query to its reserved slot.
func (ts *tenantState) attachQuery(q *Query) {
	ts.mu.Lock()
	ts.queries[q.name] = q
	ts.mu.Unlock()
}

// releaseSlot frees a reservation (failed registration) or a registered
// query's slot (Stop / DROP QUERY). name is empty for bare reservations.
func (ts *tenantState) releaseSlot(name string) {
	ts.mu.Lock()
	if ts.used > 0 {
		ts.used--
	}
	if name != "" {
		delete(ts.queries, name)
	}
	ts.mu.Unlock()
}

// lag reports the tenant's slowest consumer backlog: the maximum count
// of unconsumed results across its queries' Out channels. Queries
// registered with NoChannel contribute nothing (their emitters are
// caller-owned and presumed non-blocking).
func (ts *tenantState) lag() int {
	ts.mu.Lock()
	qs := make([]*Query, 0, len(ts.queries))
	for _, q := range ts.queries {
		qs = append(qs, q)
	}
	ts.mu.Unlock()
	max := 0
	for _, q := range qs {
		if q.out == nil {
			continue
		}
		if p := q.out.Pending(); p > max {
			max = p
		}
	}
	return max
}

// admitAppend applies the tenant's ingest controls for an n-row append:
// first consumer-lag backpressure (block while the slowest consumer is
// MaxLagWindows behind), then the token-bucket rate limit (block until n
// tokens are available). Both waits are on the wall clock and count into
// ThrottledAppends/ThrottleWaitUsec.
func (ts *tenantState) admitAppend(n int) {
	const pollEvery = 500 * time.Microsecond
	start := time.Now()
	waited := false

	ts.mu.Lock()
	lagLimit := ts.quota.MaxLagWindows
	ts.mu.Unlock()
	if lagLimit > 0 {
		for ts.lag() >= lagLimit {
			waited = true
			time.Sleep(pollEvery)
			// A lowered quota mid-wait should not strand the appender.
			ts.mu.Lock()
			lagLimit = ts.quota.MaxLagWindows
			ts.mu.Unlock()
			if lagLimit <= 0 {
				break
			}
		}
	}

	for {
		ts.mu.Lock()
		rate := ts.quota.MaxAppendRowsPerSec
		if rate <= 0 {
			ts.appendedRows += int64(n)
			ts.finishThrottleLocked(waited, start)
			ts.mu.Unlock()
			return
		}
		now := time.Now().UnixMicro()
		if ts.lastRefill == 0 {
			// First rate-limited append: start with one second's burst.
			ts.lastRefill, ts.tokens = now, rate
		}
		ts.tokens += float64(now-ts.lastRefill) / 1e6 * rate
		if burst := rate; ts.tokens > burst {
			ts.tokens = burst
		}
		ts.lastRefill = now
		if ts.tokens >= float64(n) || ts.tokens == rate {
			// Enough tokens — or the batch exceeds the whole burst, in
			// which case a full bucket is the best we can do (charging it
			// below zero keeps the long-run rate at the quota).
			ts.tokens -= float64(n)
			ts.appendedRows += int64(n)
			ts.finishThrottleLocked(waited, start)
			ts.mu.Unlock()
			return
		}
		deficit := float64(n) - ts.tokens
		ts.mu.Unlock()
		waited = true
		wait := time.Duration(deficit / rate * float64(time.Second))
		if wait < pollEvery {
			wait = pollEvery
		}
		time.Sleep(wait)
	}
}

func (ts *tenantState) finishThrottleLocked(waited bool, start time.Time) {
	if waited {
		ts.throttled++
		ts.throttleWait += time.Since(start).Microseconds()
	}
}

// AppendTenant pushes rows into a stream's basket on a tenant's account:
// the rows count against the tenant's append-rate quota and block under
// its consumer-lag backpressure before entering the ordinary append path
// (which is shared — a throttled tenant delays only itself).
//
// Deprecated: use Append(stream, rows..., AsTenant(tenant)).
func (e *Engine) AppendTenant(tenant, stream string, rows ...[]any) error {
	return e.appendRows(stream, tenant, rows...)
}

// AppendChunkTenant is AppendTenant for a pre-built columnar chunk — the
// zero-boxing tenant ingest path used by the multi-tenant harness.
//
// Deprecated: use Append(stream, c, AsTenant(tenant)).
func (e *Engine) AppendChunkTenant(tenant, stream string, c *bat.Chunk) error {
	return e.appendChunkAs(stream, c, tenant)
}

// bindIngest records that the query's tenant claims the query's input
// streams: while the binding holds, anonymous appends to those streams
// (receptors, INSERT, plain Append) are admitted through the tenant's
// token bucket and lag backpressure exactly like AppendTenant. Refcounted
// per (stream, tenant) so two queries of one tenant over one stream
// release cleanly in either order.
func (e *Engine) bindIngest(q *Query) {
	if q.tenant == "" {
		return
	}
	streams := dedupStrings(q.fac.Baskets())
	e.ingestMu.Lock()
	if e.ingestTenants == nil {
		e.ingestTenants = map[string]map[string]int{}
	}
	for _, s := range streams {
		m := e.ingestTenants[s]
		if m == nil {
			m = map[string]int{}
			e.ingestTenants[s] = m
		}
		m[q.tenant]++
	}
	e.ingestMu.Unlock()
	q.ingestStreams = streams
}

// releaseIngest undoes bindIngest when the query stops.
func (e *Engine) releaseIngest(q *Query) {
	if q.tenant == "" || len(q.ingestStreams) == 0 {
		return
	}
	e.ingestMu.Lock()
	for _, s := range q.ingestStreams {
		if m := e.ingestTenants[s]; m != nil {
			if m[q.tenant]--; m[q.tenant] <= 0 {
				delete(m, q.tenant)
			}
			if len(m) == 0 {
				delete(e.ingestTenants, s)
			}
		}
	}
	e.ingestMu.Unlock()
}

// boundTenants snapshots the tenants bound to a stream, sorted for
// deterministic admission order. It holds ingestMu only for the map scan
// — callers block in admitAppend lock-free.
func (e *Engine) boundTenants(stream string) []*tenantState {
	e.ingestMu.Lock()
	m := e.ingestTenants[stream]
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	e.ingestMu.Unlock()
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	out := make([]*tenantState, len(names))
	for i, n := range names {
		out[i] = e.tenantState(n)
	}
	return out
}

func dedupStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// IngestAppender wraps a stream's basket in the tenant-gated append
// path: receptors hand it to ListenTCP/ReplayCSV so network ingest on a
// tenant-bound stream is throttled identically to AppendTenant (same
// token bucket, same ThrottledAppends accounting). On an unbound stream
// it is a zero-overhead pass-through.
func (e *Engine) IngestAppender(stream string) (basket.Appender, error) {
	bk, err := e.Basket(stream)
	if err != nil {
		return nil, err
	}
	return &gatedAppender{eng: e, stream: stream, bk: bk}, nil
}

type gatedAppender struct {
	eng    *Engine
	stream string
	bk     *basket.Sharded
}

func (g *gatedAppender) Name() string       { return g.bk.Name() }
func (g *gatedAppender) Schema() bat.Schema { return g.bk.Schema() }

// Append implements basket.Appender with tenant admission in front.
func (g *gatedAppender) Append(c *bat.Chunk, arrival int64) error {
	for _, ts := range g.eng.boundTenants(g.stream) {
		ts.admitAppend(c.Rows())
	}
	return g.bk.Append(c, arrival)
}
