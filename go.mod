module datacell

go 1.21
