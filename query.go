package datacell

import (
	"fmt"

	"datacell/internal/basket"
	"datacell/internal/emitter"
	"datacell/internal/factory"
	"datacell/internal/plan"
	"datacell/internal/scheduler"
	"datacell/internal/sql"
	"datacell/internal/window"
)

// Mode selects how a continuous query is executed.
type Mode uint8

// The execution modes. ModeAuto picks incremental when the plan
// decomposes (windowed, at most two streams) and falls back to full
// re-evaluation otherwise — the optimizer choice the demo exposes as a
// knob.
const (
	ModeAuto Mode = iota
	ModeReeval
	ModeIncremental
)

// RegisterOptions tunes query registration.
type RegisterOptions struct {
	// Mode selects the execution strategy (default ModeAuto).
	Mode Mode
	// Emitter receives results in addition to the query's Out channel.
	Emitter emitter.Emitter
	// NoChannel suppresses the Out channel entirely (benchmarks that only
	// want an emitter callback or none at all).
	NoChannel bool
	// Isolated opts the query out of shared multi-query execution: it
	// keeps its own basket cursors and slicers instead of joining the
	// stream's query group (SQL: REGISTER ISOLATED QUERY). The default is
	// shared execution for every eligible plan — a single windowed stream
	// scan, or an incremental stream⋈stream join (which joins the stream
	// pair's join group).
	Isolated bool
	// NoMemo keeps a grouped query out of its group's shared operator
	// DAG: the per-basic-window pipeline always evaluates privately, as if
	// no sibling shared a common sub-tail. Results are unaffected;
	// benchmarks use it to measure what the memo buys. It implies
	// NoSharedMerge.
	NoMemo bool
	// NoSharedMerge keeps a grouped query out of its group's merge
	// classes and post-merge trie: the query still resolves its per-basic-
	// window pipeline through the shared DAG, but merges full windows and
	// runs its post-merge fragment (HAVING, final sort/limit) privately —
	// the pre-PR-4 behavior. Results are unaffected; benchmarks use it to
	// measure what sharing past the merge boundary buys.
	NoSharedMerge bool
	// NoFuse disables the fused vectorized tail executor for this query:
	// per-basic-window pipelines evaluate operator-at-a-time with a
	// materialized chunk per step (the pre-fusion executor), slice-time
	// predicate pushdown is off, and aggregate hash tables use the default
	// capacity. Results are byte-identical with or without it; the ablation
	// suite and benchmarks use it to measure what fusion buys.
	NoFuse bool
	// Tenant attributes the query to a named tenant for quota accounting
	// and admission control (SQL: REGISTER QUERY name TENANT t AS ...).
	// Registration fails with a *QuotaError when the tenant is at its
	// MaxQueries quota; DROP QUERY releases the slot. Empty means
	// untenanted — no quotas apply.
	Tenant string
}

// Query is a registered continuous query handle.
type Query struct {
	name   string
	eng    *Engine
	fac    *factory.Factory
	out    *emitter.Channel // nil with NoChannel
	mode   factory.Mode
	tenant string // "" when untenanted
	// ingestStreams are the input streams this query's tenant claims for
	// ingest gating (tenant.go bindIngest); released on Stop.
	ingestStreams []string

	// Shared-execution state: zero for isolated and ineligible queries.
	// The leave/close closures capture the concrete group (single-stream
	// Group or JoinGroup) so teardown stays type-agnostic here.
	groupKey   string
	groupSched string // instance-unique scheduler group of the shard transitions
	leaveGroup func()
	closeGroup func()
	// cancels removes the basket append subscriptions this query (or, for
	// classic queries, its factory wiring) registered; Stop must run them
	// or dropped queries keep taxing every later append.
	cancels []func()
	stopped bool // guarded by eng.mu
}

// Register compiles and registers a continuous query from SQL text:
//
//	q, err := eng.Register("hot", "SELECT ... FROM s [SIZE 100 SLIDE 10] ...", nil)
//
// The query starts consuming stream data immediately. Queries over a
// single windowed stream join the stream's shared execution group (see
// ARCHITECTURE.md, "Query groups"): the stream is drained and sliced once
// for all member queries and only each query's private operator tail runs
// per member.
func (e *Engine) Register(name, selectSQL string, opts *RegisterOptions) (*Query, error) {
	o := RegisterOptions{}
	if opts != nil {
		o = *opts
	}
	// sel is nil: registerQuery parses lazily, so a plan-cache hit skips
	// the parser along with bind/optimize/decompose — re-registering a
	// known text is pure wiring.
	return e.register(name, selectSQL, nil, o.Mode, &o)
}

// planEntry is one plan-cache value: the compiled artifacts of a
// registration that every later registration of the same SQL text (same
// requested mode, same catalog generation) can reuse verbatim. Plans and
// decompositions are immutable after optimization — factories key private
// state on scan-node identity but never write through it — so entries are
// shared by reference across any number of live queries.
type planEntry struct {
	opt    plan.Node
	decomp *plan.Decomposition
	fmode  factory.Mode
}

func (e *Engine) planCacheGet(key string) (*planEntry, bool) {
	e.planMu.Lock()
	ent, ok := e.planCache[key]
	e.planMu.Unlock()
	if ok {
		e.planHits.Add(1)
	} else {
		e.planMiss.Add(1)
	}
	return ent, ok
}

func (e *Engine) planCachePut(key string, ent *planEntry) {
	e.planMu.Lock()
	e.planCache[key] = ent
	e.planMu.Unlock()
}

// PlanCacheStats reports the plan cache's lifetime hit/miss counters and
// current entry count. Misses count registrations that compiled from
// scratch (including every registration via Exec, which has no stable SQL
// text to key on — those bypass the cache).
func (e *Engine) PlanCacheStats() (hits, misses int64, entries int) {
	e.planMu.Lock()
	entries = len(e.planCache)
	e.planMu.Unlock()
	return e.planHits.Load(), e.planMiss.Load(), entries
}

// RegisterOption adjusts one RegisterQuery call; each sets one field of
// RegisterOptions, so the two registration surfaces stay equivalent.
type RegisterOption func(*RegisterOptions)

// WithMode selects the execution strategy (default ModeAuto).
func WithMode(m Mode) RegisterOption {
	return func(o *RegisterOptions) { o.Mode = m }
}

// WithTenant attributes the query to a named tenant for quota accounting
// and admission control.
func WithTenant(tenant string) RegisterOption {
	return func(o *RegisterOptions) { o.Tenant = tenant }
}

// Isolated opts the query out of shared multi-query execution.
func Isolated() RegisterOption {
	return func(o *RegisterOptions) { o.Isolated = true }
}

// NoMemo keeps a grouped query out of its group's shared operator DAG
// (implies NoSharedMerge); results are unaffected.
func NoMemo() RegisterOption {
	return func(o *RegisterOptions) { o.NoMemo = true }
}

// NoSharedMerge keeps a grouped query out of its group's merge classes
// and post-merge trie; results are unaffected.
func NoSharedMerge() RegisterOption {
	return func(o *RegisterOptions) { o.NoSharedMerge = true }
}

// NoFuse disables the fused vectorized tail executor for the query;
// results are byte-identical, only the evaluation strategy changes.
func NoFuse() RegisterOption {
	return func(o *RegisterOptions) { o.NoFuse = true }
}

// NoChannel suppresses the query's Out channel.
func NoChannel() RegisterOption {
	return func(o *RegisterOptions) { o.NoChannel = true }
}

// RegisterQuery is Register with functional options — the preferred
// registration surface:
//
//	q, err := eng.RegisterQuery("hot", sql)                                  // defaults
//	q, err := eng.RegisterQuery("hot", sql, datacell.Isolated())             // opt out of sharing
//	q, err := eng.RegisterQuery("hot", sql, datacell.WithTenant("acme"),
//	    datacell.WithMode(datacell.ModeIncremental))
//
// Both surfaces share the plan cache, tenant admission, and every
// execution path; RegisterOptions remains for callers that build options
// programmatically.
func (e *Engine) RegisterQuery(name, selectSQL string, opts ...RegisterOption) (*Query, error) {
	o := RegisterOptions{}
	for _, opt := range opts {
		opt(&o)
	}
	return e.Register(name, selectSQL, &o)
}

// register wraps registerQuery with tenant admission control: the slot
// is reserved before any planning work (so concurrent registrations
// cannot overshoot MaxQueries) and released again on every failure path.
// src is the query's SQL text for plan-cache keying ("" bypasses the
// cache — the Exec path, which holds only the parsed statement).
func (e *Engine) register(name, src string, sel *sql.SelectStmt, mode Mode, opts *RegisterOptions) (*Query, error) {
	var ts *tenantState
	if opts != nil && opts.Tenant != "" {
		ts = e.tenantState(opts.Tenant)
		if err := ts.admitQuery(); err != nil {
			return nil, err
		}
	}
	q, err := e.registerQuery(name, src, sel, mode, opts)
	if ts != nil {
		if err != nil {
			ts.releaseSlot("")
		} else {
			q.tenant = opts.Tenant
			ts.attachQuery(q)
			// With the query live, its input streams ingest on the
			// tenant's account (receptor/INSERT gating, tenant.go).
			e.bindIngest(q)
		}
	}
	return q, err
}

func (e *Engine) registerQuery(name, src string, sel *sql.SelectStmt, mode Mode, opts *RegisterOptions) (*Query, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("datacell: engine closed")
	}
	if _, dup := e.queries[name]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("datacell: query %q already registered", name)
	}
	e.mu.Unlock()

	// Plan cache: identical SQL text under an unchanged catalog resolves
	// to the same bound, optimized, decomposed plan — skip recompiling.
	// The catalog generation in the key invalidates on any DDL (names
	// could bind differently); the requested mode is in the key because
	// the mode switch below changes which artifacts get built.
	var cacheKey string
	var ent *planEntry
	if src != "" {
		cacheKey = fmt.Sprintf("%d|%d|%s", e.cat.Gen(), mode, src)
		ent, _ = e.planCacheGet(cacheKey)
	}
	if ent == nil {
		if sel == nil {
			stmt, err := sql.Parse(src)
			if err != nil {
				return nil, err
			}
			s, ok := stmt.(*sql.SelectStmt)
			if !ok {
				return nil, fmt.Errorf("datacell: Register expects a SELECT, got %T", stmt)
			}
			sel = s
		}
		bound, err := plan.Bind(e.cat, sel)
		if err != nil {
			return nil, err
		}
		opt := plan.Optimize(bound)

		// Resolve the execution mode: the paper's mode 2 (incremental)
		// when the plan decomposes, mode 1 (re-evaluation) otherwise.
		ent = &planEntry{opt: opt, fmode: factory.Reeval}
		switch mode {
		case ModeIncremental:
			d, err := plan.Decompose(opt)
			if err != nil {
				return nil, fmt.Errorf("datacell: incremental mode: %w", err)
			}
			ent.decomp, ent.fmode = d, factory.Incremental
		case ModeAuto:
			if d, err := plan.Decompose(opt); err == nil {
				ent.decomp, ent.fmode = d, factory.Incremental
			}
		case ModeReeval:
			// A forced re-evaluation join whose plan decomposes still runs
			// the pair-cache tail: the decomposition certifies the recompute
			// equals the merge of cached basic-window pairs, and shared,
			// isolated and fabric-routed registrations of the same join then
			// order joined rows identically.
			if d, err := plan.Decompose(opt); err == nil && d.Join != nil {
				ent.decomp = d
			}
		}
		if cacheKey != "" {
			e.planCachePut(cacheKey, ent)
		}
	}
	opt, decomp, fmode := ent.opt, ent.decomp, ent.fmode
	streams := plan.Streams(opt)
	if len(streams) == 0 {
		return nil, fmt.Errorf("datacell: %q reads no stream; use Exec for one-time queries", name)
	}

	// Shared multi-query execution: a single windowed stream scan joins
	// the stream's query group, and a stream⋈stream join joins the stream
	// pair's join group, unless the caller opted out. Re-evaluation joins
	// group too when their plan decomposes: the decomposition certifies
	// that the full-window recompute equals the merge of cached basic-
	// window pairs, so the member shares the front ends and the
	// fingerprint-keyed pair cache instead of staying isolated.
	var groupScan *plan.ScanStream
	var joinL, joinR *plan.ScanStream
	isolated := opts != nil && opts.Isolated
	resolveShared := func() {
		if sc, ok := plan.SharedScan(opt); ok {
			groupScan = sc
		} else if decomp != nil {
			// Covers incremental joins and forced-REEVAL joins alike: the
			// mode switch above already decomposed both.
			joinL, joinR, _ = plan.SharedJoin(decomp)
		}
	}
	if !isolated {
		resolveShared()
	}

	// Streams exported to a shard fabric live in worker processes, so any
	// consumer must route through a group whose front ends the fabric can
	// feed (the workers slice shard ranges and ship sealed epoch fragments
	// into the group's merger). Isolated queries route the same way, but
	// under a nonce-unique group key: a private, single-member group — the
	// member shares nothing, yet its windows arrive over the wire like
	// everyone else's. Only plans no group shape fits — non-windowed scans,
	// non-decomposable multi-stream reads — are rejected; they would need
	// local basket cursors, which see nothing.
	var remoteStream string
	for _, sc := range streams {
		if sc.Stream.RemoteTag() != "" {
			remoteStream = sc.Stream.Name
		}
	}
	keySuffix := ""
	if remoteStream != "" && groupScan == nil && joinL == nil {
		if isolated {
			resolveShared()
			keySuffix = fmt.Sprintf("!iso#%d", e.groupSeq.Add(1))
		}
		if groupScan == nil && joinL == nil {
			return nil, fmt.Errorf("datacell: stream %q is exported to the shard fabric; only windowed stream scans and decomposable stream joins can consume it", remoteStream)
		}
	}
	shared := groupScan != nil || joinL != nil

	var emitters emitter.Multi
	var outCh *emitter.Channel
	if opts == nil || !opts.NoChannel {
		outCh = emitter.NewChannel(e.buf)
		emitters = append(emitters, outCh)
	}
	if opts != nil && opts.Emitter != nil {
		emitters = append(emitters, opts.Emitter)
	}
	var emit emitter.Emitter = emitters
	if len(emitters) == 0 {
		emit = emitter.Null{}
	}

	bind := map[*plan.ScanStream]*basket.Sharded{}
	scans := streams
	if decomp != nil {
		scans = nil
		for _, p := range decomp.Pipelines {
			scans = append(scans, p.Scan)
		}
	}
	for _, sc := range scans {
		bind[sc] = sc.Stream.Basket
	}

	fac, err := factory.New(factory.Config{
		Name:          name,
		Full:          opt,
		Decomp:        decomp,
		Mode:          fmode,
		Shared:        shared,
		NoMemo:        opts != nil && opts.NoMemo,
		NoSharedMerge: opts != nil && opts.NoSharedMerge,
		NoFuse:        opts != nil && opts.NoFuse,
		Emit:          emit,
		Now:           e.now,
		// A firing that raises an input's event-time watermark re-enables
		// the whole query: sibling shards that fired earlier may now hold
		// sealed buckets awaiting flush.
		OnWatermark: func() { e.sched.NotifyGroup(name) },
	}, bind)
	if err != nil {
		return nil, err
	}

	q := &Query{name: name, eng: e, fac: fac, out: outCh, mode: fmode}
	e.mu.Lock()
	if _, dup := e.queries[name]; dup {
		e.mu.Unlock()
		fac.Stop()
		return nil, fmt.Errorf("datacell: query %q already registered", name)
	}
	e.queries[name] = q
	e.mu.Unlock()

	if groupScan != nil {
		if err := e.joinGroup(q, groupScan, keySuffix); err != nil {
			e.mu.Lock()
			delete(e.queries, q.name)
			e.mu.Unlock()
			fac.Stop()
			return nil, err
		}
		return q, nil
	}
	if joinL != nil {
		if err := e.joinJoinGroup(q, joinL, joinR, keySuffix); err != nil {
			e.mu.Lock()
			delete(e.queries, q.name)
			e.mu.Unlock()
			fac.Stop()
			return nil, err
		}
		return q, nil
	}

	// Isolated / multi-stream path: one scheduler transition per (input,
	// shard). Shards of one query fire concurrently, sharing the query
	// name as their group so pause/resume/remove act on the whole query.
	// The shard index is the worker-affinity hint; idle workers steal
	// across shards.
	for idx := 0; idx < fac.Inputs(); idx++ {
		for sh := 0; sh < fac.Shards(idx); sh++ {
			idx, sh := idx, sh
			e.sched.Add(&scheduler.Transition{
				Name:     fmt.Sprintf("%s/%d.%d", name, idx, sh),
				Group:    name,
				Affinity: sh,
				Ready:    func() bool { return fac.ShardReady(idx, sh) },
				Fire:     func() { fac.FireShard(idx, sh) },
			})
		}
	}
	// Wire the Petri net: an append on any input basket enables every
	// shard transition of this query — shards that received no rows must
	// still observe the advanced epoch watermark to seal basic windows.
	for _, sc := range scans {
		q.cancels = append(q.cancels,
			sc.Stream.Basket.OnAppend(func() { e.sched.NotifyGroup(name) }))
	}
	// Cover anything that arrived between consumer registration and the
	// subscription above.
	e.sched.NotifyGroup(name)
	return q, nil
}

// joinGroup registers q as a member of its stream's shared execution
// group, creating the group — shard cursors, slicers, merger, and one
// scheduler transition per shard — when q is the first consumer with this
// group key. The member's private tail runs as its own transition under
// the query's name, so pause/resume/drop of one member never stalls its
// siblings or the shared shard firings.
//
// For a stream exported to the shard fabric, the group is created
// remote-fed instead: the attached fabric supplies a slicing spec, the
// worker processes run the shard front ends, and sealed epoch fragments
// arrive through Group.OfferRemote — so no local shard transitions or
// append subscriptions exist.
//
// keySuffix, when non-empty, privatizes the group: an isolated query over
// an exported stream still needs the fabric feed, so it gets a group of
// its own under a nonce-unique key instead of sharing the stream's.
func (e *Engine) joinGroup(q *Query, sc *plan.ScanStream, keySuffix string) error {
	key := plan.GroupKey(sc) + keySuffix
	remote := sc.Stream.RemoteTag() != ""
	var mem *factory.Member
	var createErr error
	gv, n := e.cat.JoinGroup(key, func() any {
		// The scheduler group name carries a nonce: a new group created
		// while a same-keyed predecessor is still tearing down must not
		// share transition names with it.
		gname := fmt.Sprintf("group:%s#%d", key, e.groupSeq.Add(1))
		cfg := factory.GroupConfig{
			Key:          key,
			SchedGroup:   gname,
			Basket:       sc.Stream.Basket,
			Window:       sc.Window,
			Schema:       sc.Out,
			Now:          e.now,
			NotifyMember: func(query string) { e.sched.NotifyGroup(query) },
			NotifyShards: func() { e.sched.NotifyGroup(gname) },
		}
		var spec *FabricSpec
		if remote {
			fab := e.fabricHandler()
			if fab == nil {
				createErr = fmt.Errorf("datacell: stream %q is exported to the shard fabric but no fabric is attached", sc.Stream.Name)
				return nil
			}
			var err error
			spec, err = fab.AddSpec(sc.Stream.Name, key, sc.Window, sc.Out)
			if err != nil {
				createErr = err
				return nil
			}
			cfg.Remote = &factory.RemoteSource{
				Shards:  spec.Shards,
				Advance: spec.Advance,
				Close:   spec.Drop,
			}
		}
		g := factory.NewGroup(cfg)
		// Join the creating member before the shard transitions (or the
		// fabric feed) go live so no basic window can seal against an empty
		// member list.
		mem = g.Join(q.name, q.fac)
		if remote {
			spec.Attach(g)
			return g
		}
		for sh := 0; sh < g.NumShards(); sh++ {
			sh := sh
			e.sched.Add(&scheduler.Transition{
				Name:     fmt.Sprintf("%s/%d", gname, sh),
				Group:    gname,
				Affinity: sh,
				Ready:    func() bool { return g.ShardReady(sh) },
				Fire:     func() { g.FireShard(sh) },
			})
		}
		g.SubscribeAppend()
		return g
	})
	if createErr != nil || gv == nil {
		e.cat.LeaveGroup(key)
		if createErr == nil {
			createErr = fmt.Errorf("datacell: group %q failed to initialize", key)
		}
		return createErr
	}
	g := gv.(*factory.Group)
	if mem == nil {
		mem = g.Join(q.name, q.fac)
	}
	q.groupKey, q.groupSched = key, g.SchedGroup()
	q.leaveGroup = func() { g.Leave(mem) }
	q.closeGroup = g.Close

	// The member's private tail: one transition, grouped under the query
	// name. Affinity n spreads sibling tails across workers.
	e.sched.Add(&scheduler.Transition{
		Name:     q.name + "/tail",
		Group:    q.name,
		Affinity: n,
		Ready:    mem.Ready,
		Fire:     func() { mem.Fire() },
	})
	// Cover anything sealed (or appended) during setup.
	e.sched.NotifyGroup(q.groupSched)
	e.sched.NotifyGroup(q.name)
	return nil
}

// joinSideOffer adapts one side of a join group to the fabric's
// RemoteGroup contract: the coordinator routes a side-spec's worker
// fragments here, and they land in that side's merger.
type joinSideOffer struct {
	g    *factory.JoinGroup
	side int
}

func (o joinSideOffer) OfferRemote(shard int, frags []*window.Frag, wm int64) {
	o.g.OfferRemote(o.side, shard, frags, wm)
}

// joinJoinGroup registers q as a member of its stream pair's shared join
// group, creating the group — two stream front ends, per-side operator
// DAGs, shared pair caches, and one scheduler transition per (side,
// shard) — when q is the first join query with this pair key. As with
// single-stream groups, the member's private tail runs as its own
// transition under the query's name, so pause/resume/drop of one join
// query never stalls its siblings or the shared slicing.
//
// A side whose stream is exported to the shard fabric gets its own
// slicing spec (the spec key carries a #L / #R suffix so the two sides of
// one group stay distinct on the wire): the workers co-partition that
// stream's shards and ship sealed epoch fragments into the side's merger
// via OfferRemote, while pairing — and the join itself — stays
// coordinator-side, where the members' shared pair caches live. The sides
// are independent, so a remote stream can join a local one. keySuffix
// privatizes the group for isolated queries, as in joinGroup.
func (e *Engine) joinJoinGroup(q *Query, left, right *plan.ScanStream, keySuffix string) error {
	key := plan.JoinGroupKey(left, right) + keySuffix
	scans := [2]*plan.ScanStream{left, right}
	var mem *factory.JoinMember
	var createErr error
	gv, n := e.cat.JoinGroup(key, func() any {
		gname := fmt.Sprintf("group:%s#%d", key, e.groupSeq.Add(1))
		cfg := factory.JoinGroupConfig{
			Key:          key,
			SchedGroup:   gname,
			Left:         left,
			Right:        right,
			Now:          e.now,
			NotifyMember: func(query string) { e.sched.NotifyGroup(query) },
			NotifyShards: func() { e.sched.NotifyGroup(gname) },
		}
		var specs [2]*FabricSpec
		for side, sc := range scans {
			if sc.Stream.RemoteTag() == "" {
				continue
			}
			fab := e.fabricHandler()
			if fab == nil {
				createErr = fmt.Errorf("datacell: stream %q is exported to the shard fabric but no fabric is attached", sc.Stream.Name)
				return nil
			}
			spec, err := fab.AddSpec(sc.Stream.Name, fmt.Sprintf("%s#%c", key, "LR"[side]), sc.Window, sc.Out)
			if err != nil {
				createErr = err
				if specs[0] != nil {
					specs[0].Drop()
				}
				return nil
			}
			specs[side] = spec
			cfg.Remote[side] = &factory.RemoteSource{
				Shards:  spec.Shards,
				Advance: spec.Advance,
				Close:   spec.Drop,
			}
		}
		g := factory.NewJoinGroup(cfg)
		// Join the creating member before the shard transitions (or the
		// fabric feeds) go live so no basic window can seal against an
		// empty member list.
		mem = g.Join(q.name, q.fac)
		for side := 0; side < 2; side++ {
			if specs[side] != nil {
				side, spec := side, specs[side]
				spec.Attach(joinSideOffer{g: g, side: side})
				continue
			}
			for sh := 0; sh < g.NumShards(side); sh++ {
				side, sh := side, sh
				e.sched.Add(&scheduler.Transition{
					Name:     fmt.Sprintf("%s/%d.%d", gname, side, sh),
					Group:    gname,
					Affinity: sh,
					Ready:    func() bool { return g.ShardReady(side, sh) },
					Fire:     func() { g.FireShard(side, sh) },
				})
			}
		}
		g.SubscribeAppend()
		return g
	})
	if createErr != nil || gv == nil {
		e.cat.LeaveGroup(key)
		if createErr == nil {
			createErr = fmt.Errorf("datacell: group %q failed to initialize", key)
		}
		return createErr
	}
	g := gv.(*factory.JoinGroup)
	if mem == nil {
		mem = g.Join(q.name, q.fac)
	}
	q.groupKey, q.groupSched = key, g.SchedGroup()
	q.leaveGroup = func() { g.Leave(mem) }
	q.closeGroup = g.Close

	e.sched.Add(&scheduler.Transition{
		Name:     q.name + "/tail",
		Group:    q.name,
		Affinity: n,
		Ready:    mem.Ready,
		Fire:     func() { mem.Fire() },
	})
	// Cover anything sealed (or appended) during setup.
	e.sched.NotifyGroup(q.groupSched)
	e.sched.NotifyGroup(q.name)
	return nil
}

// Name reports the query name.
func (q *Query) Name() string { return q.name }

// Mode reports the resolved execution mode ("incremental" or "reeval").
func (q *Query) Mode() string { return q.mode.String() }

// Tenant reports the tenant the query is attributed to ("" when
// untenanted).
func (q *Query) Tenant() string { return q.tenant }

// Grouped reports whether the query runs as a member of a shared
// execution group (single-stream or join).
func (q *Query) Grouped() bool { return q.groupKey != "" }

// GroupKey reports the shared execution group the query belongs to ("" if
// isolated).
func (q *Query) GroupKey() string { return q.groupKey }

// Out is the result channel (nil when registered with NoChannel). Each
// element is one evaluation's result set with metadata.
func (q *Query) Out() <-chan emitter.Result {
	if q.out == nil {
		return nil
	}
	return q.out.Out()
}

// Dropped reports results discarded because the Out channel was full.
func (q *Query) Dropped() int64 {
	if q.out == nil {
		return 0
	}
	return q.out.Dropped()
}

// Pause suspends the query: events keep accumulating in its baskets (or,
// for a grouped query, sealed basic windows in its member queue) and are
// processed on Resume (demo §4, Pause and Resume). Pausing one member of
// a shared group does not stall its siblings: the group keeps slicing and
// fanning out.
func (q *Query) Pause() { q.eng.sched.Pause(q.name) }

// Resume reactivates a paused query.
func (q *Query) Resume() { q.eng.sched.Resume(q.name) }

// Paused reports whether the query is paused.
func (q *Query) Paused() bool { return q.eng.sched.Paused(q.name) }

// Stop removes the query from the network: its scheduler transitions are
// removed (waiting out any in-flight firing), its basket subscriptions
// and cursors are released, and — for a grouped query — it leaves its
// execution group, tearing the group down when it was the last member.
// Pending tuples or sealed windows it alone was holding get dropped, and
// its emitters close.
func (q *Query) Stop() {
	e := q.eng
	e.mu.Lock()
	if q.stopped {
		e.mu.Unlock()
		return
	}
	q.stopped = true
	e.mu.Unlock()

	// Release the tenant's quota slot first: a rejected sibling can
	// re-register the moment the drop is initiated. The stopped guard
	// above makes this exactly-once.
	if q.tenant != "" {
		e.tenantState(q.tenant).releaseSlot(q.name)
		e.releaseIngest(q)
	}

	e.sched.RemoveWait(q.name)
	for _, cancel := range q.cancels {
		cancel()
	}
	if q.leaveGroup != nil {
		_, remaining := e.cat.LeaveGroup(q.groupKey)
		if remaining == 0 {
			// Last member: retire the shared shard transitions, then
			// release the group's cursors and subscriptions.
			e.sched.RemoveWait(q.groupSched)
			q.leaveGroup()
			q.closeGroup()
		} else {
			q.leaveGroup()
		}
	}
	q.fac.Stop()
	// The name is released only now: a concurrent Register of the same
	// name during teardown fails as a duplicate instead of racing this
	// removal (its same-named transitions would be swept by the
	// RemoveWait above).
	e.mu.Lock()
	delete(e.queries, q.name)
	e.mu.Unlock()
}

// Stats returns the query's counters (firings, tuples, latencies).
func (q *Query) Stats() factory.Stats { return q.fac.Stats() }

// RecentLatencies returns the response times (µs) of the newest
// evaluations, oldest first — the sample behind the p99 gauge on /metrics
// and the multi-tenant harness's seal-latency percentile.
func (q *Query) RecentLatencies() []int64 { return q.fac.RecentLatencies() }

// PlanString renders the optimized one-time plan — the "normal" plan shape
// of the demo's plan inspection.
func (q *Query) PlanString() string { return q.fac.PlanString() }

// ContinuousPlanString renders the continuous plan: the split/merge
// decomposition for incremental queries, or the re-evaluation wrapper.
func (q *Query) ContinuousPlanString() string { return q.fac.ContinuousPlanString() }
