package datacell

import (
	"fmt"

	"datacell/internal/basket"
	"datacell/internal/emitter"
	"datacell/internal/factory"
	"datacell/internal/plan"
	"datacell/internal/scheduler"
	"datacell/internal/sql"
)

// Mode selects how a continuous query is executed.
type Mode uint8

// The execution modes. ModeAuto picks incremental when the plan
// decomposes (windowed, at most two streams) and falls back to full
// re-evaluation otherwise — the optimizer choice the demo exposes as a
// knob.
const (
	ModeAuto Mode = iota
	ModeReeval
	ModeIncremental
)

// RegisterOptions tunes query registration.
type RegisterOptions struct {
	// Mode selects the execution strategy (default ModeAuto).
	Mode Mode
	// Emitter receives results in addition to the query's Out channel.
	Emitter emitter.Emitter
	// NoChannel suppresses the Out channel entirely (benchmarks that only
	// want an emitter callback or none at all).
	NoChannel bool
}

// Query is a registered continuous query handle.
type Query struct {
	name string
	eng  *Engine
	fac  *factory.Factory
	out  *emitter.Channel // nil with NoChannel
	mode factory.Mode
}

// Register compiles and registers a continuous query from SQL text:
//
//	q, err := eng.Register("hot", "SELECT ... FROM s [SIZE 100 SLIDE 10] ...", nil)
//
// The query starts consuming stream data immediately.
func (e *Engine) Register(name, selectSQL string, opts *RegisterOptions) (*Query, error) {
	stmt, err := sql.Parse(selectSQL)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("datacell: Register expects a SELECT, got %T", stmt)
	}
	o := RegisterOptions{}
	if opts != nil {
		o = *opts
	}
	return e.register(name, sel, o.Mode, &o)
}

func (e *Engine) register(name string, sel *sql.SelectStmt, mode Mode, opts *RegisterOptions) (*Query, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("datacell: engine closed")
	}
	if _, dup := e.queries[name]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("datacell: query %q already registered", name)
	}
	e.mu.Unlock()

	bound, err := plan.Bind(e.cat, sel)
	if err != nil {
		return nil, err
	}
	opt := plan.Optimize(bound)
	streams := plan.Streams(opt)
	if len(streams) == 0 {
		return nil, fmt.Errorf("datacell: %q reads no stream; use Exec for one-time queries", name)
	}

	// Resolve the execution mode: the paper's mode 2 (incremental) when
	// the plan decomposes, mode 1 (re-evaluation) otherwise.
	var decomp *plan.Decomposition
	fmode := factory.Reeval
	switch mode {
	case ModeIncremental:
		d, err := plan.Decompose(opt)
		if err != nil {
			return nil, fmt.Errorf("datacell: incremental mode: %w", err)
		}
		decomp, fmode = d, factory.Incremental
	case ModeAuto:
		if d, err := plan.Decompose(opt); err == nil {
			decomp, fmode = d, factory.Incremental
		}
	}

	var emitters emitter.Multi
	var outCh *emitter.Channel
	if opts == nil || !opts.NoChannel {
		outCh = emitter.NewChannel(e.buf)
		emitters = append(emitters, outCh)
	}
	if opts != nil && opts.Emitter != nil {
		emitters = append(emitters, opts.Emitter)
	}
	var emit emitter.Emitter = emitters
	if len(emitters) == 0 {
		emit = emitter.Null{}
	}

	bind := map[*plan.ScanStream]*basket.Sharded{}
	scans := streams
	if decomp != nil {
		scans = nil
		for _, p := range decomp.Pipelines {
			scans = append(scans, p.Scan)
		}
	}
	for _, sc := range scans {
		bind[sc] = sc.Stream.Basket
	}

	fac, err := factory.New(factory.Config{
		Name:   name,
		Full:   opt,
		Decomp: decomp,
		Mode:   fmode,
		Emit:   emit,
		Now:    e.now,
		// A firing that raises an input's event-time watermark re-enables
		// the whole query: sibling shards that fired earlier may now hold
		// sealed buckets awaiting flush.
		OnWatermark: func() { e.sched.NotifyGroup(name) },
	}, bind)
	if err != nil {
		return nil, err
	}

	q := &Query{name: name, eng: e, fac: fac, out: outCh, mode: fmode}
	e.mu.Lock()
	if _, dup := e.queries[name]; dup {
		e.mu.Unlock()
		fac.Stop()
		return nil, fmt.Errorf("datacell: query %q already registered", name)
	}
	e.queries[name] = q
	e.mu.Unlock()

	// One scheduler transition per (input, shard): shards of one query
	// fire concurrently, sharing the query name as their group so
	// pause/resume/remove act on the whole query. The shard index is the
	// worker-affinity hint; idle workers steal across shards.
	for idx := 0; idx < fac.Inputs(); idx++ {
		for sh := 0; sh < fac.Shards(idx); sh++ {
			idx, sh := idx, sh
			e.sched.Add(&scheduler.Transition{
				Name:     fmt.Sprintf("%s/%d.%d", name, idx, sh),
				Group:    name,
				Affinity: sh,
				Ready:    func() bool { return fac.ShardReady(idx, sh) },
				Fire:     func() { fac.FireShard(idx, sh) },
			})
		}
	}
	// Wire the Petri net: an append on any input basket enables every
	// shard transition of this query — shards that received no rows must
	// still observe the advanced epoch watermark to seal basic windows.
	for _, sc := range scans {
		sc.Stream.Basket.OnAppend(func() { e.sched.NotifyGroup(name) })
	}
	return q, nil
}

// Name reports the query name.
func (q *Query) Name() string { return q.name }

// Mode reports the resolved execution mode ("incremental" or "reeval").
func (q *Query) Mode() string { return q.mode.String() }

// Out is the result channel (nil when registered with NoChannel). Each
// element is one evaluation's result set with metadata.
func (q *Query) Out() <-chan emitter.Result {
	if q.out == nil {
		return nil
	}
	return q.out.Out()
}

// Dropped reports results discarded because the Out channel was full.
func (q *Query) Dropped() int64 {
	if q.out == nil {
		return 0
	}
	return q.out.Dropped()
}

// Pause suspends the query: events keep accumulating in its baskets and
// are processed on Resume (demo §4, Pause and Resume).
func (q *Query) Pause() { q.eng.sched.Pause(q.name) }

// Resume reactivates a paused query.
func (q *Query) Resume() { q.eng.sched.Resume(q.name) }

// Paused reports whether the query is paused.
func (q *Query) Paused() bool { return q.eng.sched.Paused(q.name) }

// Stop removes the query from the network, releasing its basket cursors
// (pending tuples it alone was holding get dropped) and closing its
// emitters.
func (q *Query) Stop() {
	q.eng.sched.Remove(q.name)
	q.eng.mu.Lock()
	delete(q.eng.queries, q.name)
	q.eng.mu.Unlock()
	q.fac.Stop()
}

// Stats returns the query's counters (firings, tuples, latencies).
func (q *Query) Stats() factory.Stats { return q.fac.Stats() }

// PlanString renders the optimized one-time plan — the "normal" plan shape
// of the demo's plan inspection.
func (q *Query) PlanString() string { return q.fac.PlanString() }

// ContinuousPlanString renders the continuous plan: the split/merge
// decomposition for incremental queries, or the re-evaluation wrapper.
func (q *Query) ContinuousPlanString() string { return q.fac.ContinuousPlanString() }
