package datacell

// Tests for shared multi-query execution groups: queries over the same
// stream and slide granularity share one drain+slice+merge front end, and
// each member runs only its private tail. The equivalence invariant is
// that a query inside a group of N produces byte-identical output to the
// same query registered alone.

import (
	"fmt"
	"strings"
	"testing"
)

// collectRendered drains a query's results, rendering each result set
// verbatim (order-sensitive, byte-level comparison unit).
func collectRendered(q *Query) []string {
	var out []string
	for {
		select {
		case r := <-q.Out():
			out = append(out, r.Chunk.String())
		default:
			return out
		}
	}
}

// groupMemberSQL is the i-th member query of the equivalence tests:
// varied filters, aggregates and window extents over one shared slide
// granularity, so the 16 members have genuinely divergent tails.
func groupMemberSQL(i int, size, slide int) string {
	// Window extents vary (multiples of the slide) while the slide — the
	// group key — stays fixed.
	sz := size
	if i%3 == 1 && size > slide {
		sz = size / 2
		if sz < slide {
			sz = slide
		}
		sz = (sz / slide) * slide
	}
	switch i % 4 {
	case 0:
		return fmt.Sprintf("SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k", sz, slide)
	case 1:
		return fmt.Sprintf("SELECT k, v FROM s [SIZE %d SLIDE %d] WHERE v >= %d.0", sz, slide, (i%5)*20)
	case 2:
		return fmt.Sprintf("SELECT k, min(v) AS lo, max(v) AS hi FROM s [SIZE %d SLIDE %d] GROUP BY k", sz, slide)
	default:
		return fmt.Sprintf("SELECT count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k HAVING count(*) > %d", sz, slide, i%3)
	}
}

func groupMemberMode(i int) Mode {
	if i%2 == 0 {
		return ModeIncremental
	}
	return ModeReeval
}

// TestGroupEquivalence16 is the acceptance invariant: each query in a
// 16-member group produces byte-identical results to the same query
// registered alone, for 1-shard and 4-shard streams and for tumbling and
// sliding windows. Workers=1 makes shard firing order deterministic, so
// the comparison can be exact (order-sensitive) rather than sorted.
func TestGroupEquivalence16(t *testing.T) {
	chunks := shardTestChunks(400, 17, 5)
	ddls := []string{
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)",
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k",
	}
	windows := []struct{ size, slide int }{
		{64, 16}, // sliding
		{32, 32}, // tumbling
	}
	const members = 16
	for _, ddl := range ddls {
		for _, w := range windows {
			// Alone: each member query on its own engine.
			alone := make([][]string, members)
			for i := 0; i < members; i++ {
				eng := New(&Options{Workers: 1})
				if _, err := eng.Exec(ddl); err != nil {
					t.Fatal(err)
				}
				q, err := eng.Register("q", groupMemberSQL(i, w.size, w.slide),
					&RegisterOptions{Mode: groupMemberMode(i)})
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range chunks {
					if err := eng.AppendChunk("s", c); err != nil {
						t.Fatal(err)
					}
				}
				eng.Drain()
				alone[i] = collectRendered(q)
				eng.Close()
			}

			// Grouped: all 16 on one engine, sharing one execution group.
			eng := New(&Options{Workers: 1})
			if _, err := eng.Exec(ddl); err != nil {
				t.Fatal(err)
			}
			qs := make([]*Query, members)
			for i := 0; i < members; i++ {
				q, err := eng.Register(fmt.Sprintf("q%02d", i), groupMemberSQL(i, w.size, w.slide),
					&RegisterOptions{Mode: groupMemberMode(i)})
				if err != nil {
					t.Fatal(err)
				}
				if !q.Grouped() {
					t.Fatalf("member %d did not join a group", i)
				}
				qs[i] = q
			}
			if groups := eng.Groups(); len(groups) != 1 || groups[0].Members != members {
				t.Fatalf("groups = %+v, want one group of %d", groups, members)
			}
			for _, c := range chunks {
				if err := eng.AppendChunk("s", c); err != nil {
					t.Fatal(err)
				}
			}
			eng.Drain()
			for i, q := range qs {
				got := collectRendered(q)
				if len(got) == 0 {
					t.Fatalf("ddl=%q w=%v member %d emitted nothing", ddl, w, i)
				}
				if len(got) != len(alone[i]) {
					t.Fatalf("ddl=%q w=%v member %d: evals=%d, alone=%d",
						ddl, w, i, len(got), len(alone[i]))
				}
				for j := range got {
					if got[j] != alone[i][j] {
						t.Fatalf("ddl=%q w=%v member %d eval %d diverges:\ngrouped:\n%s\nalone:\n%s",
							ddl, w, i, j, got[j], alone[i][j])
					}
				}
			}
			eng.Close()
		}
	}
}

// TestSharedSubtailEquivalence is the shared-operator-DAG acceptance
// invariant: members whose pipelines share a common filter + partial-
// aggregate prefix (diverging only in their merge stages) produce
// byte-identical results to the same queries registered alone, while the
// group evaluates the common prefix once per basic window — visible as
// DAG nodes and a high memo hit rate in the group stats.
func TestSharedSubtailEquivalence(t *testing.T) {
	chunks := shardTestChunks(400, 20, 6)
	const members = 8
	// A common prefix (filter + grouped partial aggregate) with divergent
	// HAVING thresholds: the post-merge fragments differ per member, the
	// per-basic-window work is identical.
	sql := func(i int) string {
		return fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 40 SLIDE 10] WHERE v < 80.0 GROUP BY k HAVING count(*) > %d", i%4)
	}
	alone := make([][]string, members)
	for i := 0; i < members; i++ {
		eng := New(&Options{Workers: 1})
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		q, err := eng.Register("q", sql(i), &RegisterOptions{Mode: ModeIncremental})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks {
			if err := eng.AppendChunk("s", c); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		alone[i] = collectRendered(q)
		eng.Close()
	}

	eng := New(&Options{Workers: 1})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	qs := make([]*Query, members)
	for i := 0; i < members; i++ {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), sql(i),
			&RegisterOptions{Mode: ModeIncremental})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	for i, q := range qs {
		got := collectRendered(q)
		if len(got) == 0 || len(got) != len(alone[i]) {
			t.Fatalf("member %d: evals=%d, alone=%d", i, len(got), len(alone[i]))
		}
		for j := range got {
			if got[j] != alone[i][j] {
				t.Fatalf("member %d eval %d diverges:\ngrouped:\n%s\nalone:\n%s",
					i, j, got[j], alone[i][j])
			}
		}
	}
	g := eng.Groups()
	if len(g) != 1 {
		t.Fatalf("groups = %+v", g)
	}
	// One shared filter node + one shared partial-aggregate node.
	if g[0].DagNodes != 2 {
		t.Errorf("DAG nodes = %d, want 2 (filter + partial aggregate)", g[0].DagNodes)
	}
	if g[0].MemoMisses == 0 || g[0].MemoHits == 0 {
		t.Fatalf("memo counters: hits=%d misses=%d", g[0].MemoHits, g[0].MemoMisses)
	}
	// 8 members share one prefix: at least 3/4 of operator evaluations
	// must be memo hits (exact rate: first member misses twice per window,
	// siblings hit).
	if rate := g[0].MemoHitRate(); rate < 0.75 {
		t.Errorf("memo hit rate = %.2f, want ≥ 0.75", rate)
	}
}

// TestSharedSubtailNoMemo pins the NoMemo escape hatch: members opting
// out of the DAG still share the front end and produce identical results,
// with zero memo traffic.
func TestSharedSubtailNoMemo(t *testing.T) {
	chunks := shardTestChunks(200, 10, 4)
	sql := "SELECT k, sum(v) AS s FROM s [SIZE 20 SLIDE 10] WHERE v < 90.0 GROUP BY k"
	run := func(noMemo bool) ([][]string, GroupInfo) {
		eng := New(&Options{Workers: 1})
		defer eng.Close()
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		var qs []*Query
		for i := 0; i < 4; i++ {
			q, err := eng.Register(fmt.Sprintf("q%d", i), sql,
				&RegisterOptions{Mode: ModeIncremental, NoMemo: noMemo})
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, q)
		}
		for _, c := range chunks {
			_ = eng.AppendChunk("s", c)
		}
		eng.Drain()
		var all [][]string
		for _, q := range qs {
			all = append(all, collectRendered(q))
		}
		return all, eng.Groups()[0]
	}
	memo, gm := run(false)
	plain, gp := run(true)
	if fmt.Sprint(memo) != fmt.Sprint(plain) {
		t.Fatal("NoMemo changed results")
	}
	if gm.MemoHits == 0 {
		t.Error("memoized run recorded no hits")
	}
	if gp.MemoHits != 0 || gp.MemoMisses != 0 || gp.DagNodes != 0 {
		t.Errorf("NoMemo run touched the DAG: %+v", gp)
	}
}

// TestGroupMatchesIsolated pins the new shared dataflow against the
// pre-existing per-query dataflow: a grouped query and an ISOLATED one
// (own cursors and slicers) see identical windows, order-insensitive
// under parallel workers.
func TestGroupMatchesIsolated(t *testing.T) {
	chunks := shardTestChunks(400, 13, 7)
	sql := "SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 60 SLIDE 20] GROUP BY k"
	run := func(opts *RegisterOptions) [][]string {
		eng := New(&Options{Workers: 4})
		defer eng.Close()
		if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"); err != nil {
			t.Fatal(err)
		}
		q, err := eng.Register("q", sql, opts)
		if err != nil {
			t.Fatal(err)
		}
		if opts.Isolated == q.Grouped() {
			t.Fatalf("Isolated=%v but Grouped=%v", opts.Isolated, q.Grouped())
		}
		for _, c := range chunks {
			if err := eng.AppendChunk("s", c); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		return collectSorted(q)
	}
	for _, mode := range []Mode{ModeIncremental, ModeReeval} {
		grouped := run(&RegisterOptions{Mode: mode})
		isolated := run(&RegisterOptions{Mode: mode, Isolated: true})
		if len(grouped) == 0 || fmt.Sprint(grouped) != fmt.Sprint(isolated) {
			t.Fatalf("mode %v: grouped %v\nisolated %v", mode, grouped, isolated)
		}
	}
}

// TestGroupKeyRules checks which queries share a group: same stream and
// slide share (window extent may differ), different slides split, and
// ISOLATED opts out.
func TestGroupKeyRules(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	reg := func(name, sql string) *Query {
		t.Helper()
		q, err := eng.Register(name, sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	a := reg("a", "SELECT count(*) AS n FROM s [SIZE 64 SLIDE 16]")
	b := reg("b", "SELECT k, sum(v) AS t FROM s [SIZE 32 SLIDE 16] GROUP BY k")
	c := reg("c", "SELECT count(*) AS n FROM s [SIZE 64 SLIDE 32]")
	if a.GroupKey() != b.GroupKey() {
		t.Errorf("same slide, different extent should share a group: %q vs %q", a.GroupKey(), b.GroupKey())
	}
	if a.GroupKey() == c.GroupKey() {
		t.Errorf("different slides must not share a group: %q", a.GroupKey())
	}
	if got := len(eng.Groups()); got != 2 {
		t.Errorf("groups = %d, want 2", got)
	}
	if _, err := eng.Exec("REGISTER ISOLATED QUERY iso AS SELECT count(*) AS n FROM s [SIZE 64 SLIDE 16]"); err != nil {
		t.Fatal(err)
	}
	iso, _ := eng.Query("iso")
	if iso.Grouped() {
		t.Error("REGISTER ISOLATED QUERY joined a group")
	}
	// Incremental join queries over two streams join the stream pair's
	// join group; the key pairs both sides' slicing granularities.
	mustExecG(t, eng, "CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)")
	j := reg("j", "SELECT s.v, r.v FROM s [SIZE 16 SLIDE 16], r [SIZE 16 SLIDE 16] WHERE s.k = r.k")
	if !j.Grouped() {
		t.Error("incremental two-stream join should join a join group")
	}
	if !strings.Contains(j.GroupKey(), "⋈") {
		t.Errorf("join group key = %q, want a paired key", j.GroupKey())
	}
	j2 := reg("j2", "SELECT s.v, r.v FROM s [SIZE 16 SLIDE 16], r [SIZE 16 SLIDE 16] WHERE s.k = r.k AND s.v > 1.0")
	if j2.GroupKey() != j.GroupKey() {
		t.Errorf("same stream pair and slide must share a join group: %q vs %q", j2.GroupKey(), j.GroupKey())
	}
	// A re-evaluation join whose plan decomposes joins the same join
	// group: its full-window recompute is served by the shared pair cache
	// (PR 4; before that it stayed isolated).
	jr, err := eng.Register("jr",
		"SELECT s.v, r.v FROM s [SIZE 16 SLIDE 16], r [SIZE 16 SLIDE 16] WHERE s.k = r.k",
		&RegisterOptions{Mode: ModeReeval})
	if err != nil {
		t.Fatal(err)
	}
	if !jr.Grouped() {
		t.Error("re-evaluation join with a decomposable plan should join the join group")
	}
	if jr.GroupKey() != j.GroupKey() {
		t.Errorf("re-evaluation join key = %q, want %q (shared with incremental members)",
			jr.GroupKey(), j.GroupKey())
	}
	if jr.Mode() != "reeval" {
		t.Errorf("grouped re-evaluation join reports mode %q, want reeval", jr.Mode())
	}
	// REGISTER ISOLATED opts joins out too.
	ji, err := eng.Register("ji",
		"SELECT s.v, r.v FROM s [SIZE 16 SLIDE 16], r [SIZE 16 SLIDE 16] WHERE s.k = r.k",
		&RegisterOptions{Isolated: true})
	if err != nil {
		t.Fatal(err)
	}
	if ji.Grouped() {
		t.Error("isolated join joined a group")
	}
}

func mustExecG(t *testing.T, e *Engine, sql string) {
	t.Helper()
	if _, err := e.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// TestGroupMemberPauseIndependence: pausing one member must not stall its
// siblings or the shared slice; the paused member catches up on Resume
// with the same results it would have produced live.
func TestGroupMemberPauseIndependence(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	sql := "SELECT count(*) AS n FROM s [SIZE 10 SLIDE 10]"
	qa, err := eng.Register("a", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := eng.Register("b", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	qb.Pause()
	for i := 0; i < 30; i++ {
		if err := eng.Append("s", []any{int64(i), int64(i), 1.0}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	if got := collectSorted(qa); len(got) != 3 {
		t.Fatalf("live sibling emitted %d evals, want 3", len(got))
	}
	if got := collectSorted(qb); len(got) != 0 {
		t.Fatalf("paused member emitted %v", got)
	}
	qb.Resume()
	eng.Drain()
	got := collectSorted(qb)
	if len(got) != 3 {
		t.Fatalf("resumed member emitted %d evals, want 3", len(got))
	}
	for i, rows := range got {
		if len(rows) != 1 || rows[0] != "[10]" {
			t.Fatalf("eval %d = %v, want [[10]]", i, rows)
		}
	}
}

// TestGroupMemberDropLifecycle: dropping a member leaves siblings
// running; dropping the last member tears the group down — cursors,
// append subscription and registry entry all released.
func TestGroupMemberDropLifecycle(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	bk, _ := eng.Basket("s")
	baseSubs := bk.Subscribers()
	baseCons := bk.Consumers()

	sql := "SELECT count(*) AS n FROM s [SIZE 5 SLIDE 5]"
	var qs []*Query
	for i := 0; i < 3; i++ {
		q, err := eng.Register(fmt.Sprintf("q%d", i), sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	if g := eng.Groups(); len(g) != 1 || g[0].Members != 3 {
		t.Fatalf("groups = %+v", g)
	}
	qs[0].Stop()
	if g := eng.Groups(); len(g) != 1 || g[0].Members != 2 {
		t.Fatalf("after one drop: groups = %+v", g)
	}
	for i := 0; i < 10; i++ {
		_ = eng.Append("s", []any{int64(i), int64(i), 1.0})
	}
	eng.Drain()
	if got := collectSorted(qs[1]); len(got) != 2 {
		t.Fatalf("surviving member emitted %d evals, want 2", len(got))
	}
	qs[1].Stop()
	qs[2].Stop()
	if g := eng.Groups(); len(g) != 0 {
		t.Fatalf("after last drop: groups = %+v", g)
	}
	if got := bk.Subscribers(); got != baseSubs {
		t.Errorf("append subscriptions leaked: %d, want %d", got, baseSubs)
	}
	if got := bk.Consumers(); got != baseCons {
		t.Errorf("basket consumers leaked: %d, want %d", got, baseCons)
	}
	// The stream is droppable again once no query reads it.
	mustExecG(t, eng, "DROP STREAM s")
}

// TestDropPausedQueryReleasesSubscription is the regression test for the
// leak: DROP QUERY on a paused query left its basket append subscription
// registered, so every later append kept waking (and paying for) the dead
// query. Covers both the grouped and the isolated dataflow.
func TestDropPausedQueryReleasesSubscription(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	bk, _ := eng.Basket("s")
	baseSubs := bk.Subscribers()
	baseCons := bk.Consumers()

	for _, isolated := range []bool{false, true} {
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("leak_%v_%d", isolated, i)
			q, err := eng.Register(name, "SELECT count(*) AS n FROM s [SIZE 8 SLIDE 8]",
				&RegisterOptions{Isolated: isolated})
			if err != nil {
				t.Fatal(err)
			}
			q.Pause()
			if _, err := eng.Exec("DROP QUERY " + name); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := bk.Subscribers(); got != baseSubs {
		t.Fatalf("subscriptions after paused drops = %d, want %d (leak)", got, baseSubs)
	}
	if got := bk.Consumers(); got != baseCons {
		t.Fatalf("consumers after paused drops = %d, want %d (leak)", got, baseCons)
	}
}

// TestGroupBufferRefcount pins the shared-buffer lifecycle: incremental
// members release the raw window data as soon as their intermediates are
// cached, re-evaluation members hold it until ring eviction, and stopping
// every member releases everything.
func TestGroupBufferRefcount(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	sql := "SELECT k, sum(v) AS t FROM s [SIZE 20 SLIDE 10] GROUP BY k"
	inc, err := eng.Register("inc", sql, &RegisterOptions{Mode: ModeIncremental, NoChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	re, err := eng.Register("re", sql, &RegisterOptions{Mode: ModeReeval, NoChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = eng.Append("s", []any{int64(i), int64(i % 4), 1.0})
	}
	eng.Drain()
	g := eng.Groups()
	if len(g) != 1 {
		t.Fatalf("groups = %+v", g)
	}
	// The re-evaluation member's ring holds SIZE/SLIDE = 2 basic windows;
	// the incremental member released its references at cache time.
	if g[0].LiveBufs != 2 {
		t.Fatalf("live buffers after drain = %d, want 2 (reeval ring)", g[0].LiveBufs)
	}
	re.Stop()
	if g := eng.Groups(); g[0].LiveBufs != 0 {
		t.Fatalf("live buffers after reeval member stop = %d, want 0", g[0].LiveBufs)
	}
	inc.Stop()
	if g := eng.Groups(); len(g) != 0 {
		t.Fatalf("groups after last stop = %+v", g)
	}
}

// TestGroupTimeWindows checks the time-window group path end to end:
// shared event-time watermark, AdvanceTime forcing idle buckets shut, and
// equivalence with a query registered alone.
func TestGroupTimeWindows(t *testing.T) {
	sql := "SELECT k, count(*) AS n FROM s [RANGE 2 SECONDS SLIDE 1 SECOND ON ts] GROUP BY k"
	sec := int64(1_000_000)
	feed := func(eng *Engine) {
		for i, ts := range []int64{100, 200, 300, sec + 100, sec + 200, 3*sec + 100} {
			if err := eng.Append("s", []any{ts, int64(i % 2), 1.0}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		eng.AdvanceTime(5 * sec)
		eng.Drain()
	}
	// Alone.
	eng1 := New(&Options{Workers: 1})
	mustExecG(t, eng1, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	q1, err := eng1.Register("q", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(eng1)
	want := collectRendered(q1)
	eng1.Close()
	if len(want) == 0 {
		t.Fatal("alone time-window query produced nothing")
	}

	// In a group of 8.
	eng := New(&Options{Workers: 1})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	qs := make([]*Query, 8)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%d", i), sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	feed(eng)
	for i, q := range qs {
		got := collectRendered(q)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("member %d diverges:\ngrouped %v\nalone   %v", i, got, want)
		}
	}
}

// TestGroupStreamTableJoin: a stream⋈table plan has a single stream scan,
// so it groups; results must match the isolated run.
func TestGroupStreamTableJoin(t *testing.T) {
	run := func(isolated bool) [][]string {
		eng := New(&Options{Workers: 2})
		defer eng.Close()
		mustExecG(t, eng, "CREATE TABLE dim (k INT, grp INT)")
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		for i := 0; i < 8; i++ {
			mustExecG(t, eng, fmt.Sprintf("INSERT INTO dim VALUES (%d, %d)", i, i%2))
		}
		q, err := eng.Register("q",
			"SELECT d.grp, count(*) AS n FROM s [SIZE 16 SLIDE 8] JOIN dim d ON s.k = d.k GROUP BY d.grp",
			&RegisterOptions{Isolated: isolated})
		if err != nil {
			t.Fatal(err)
		}
		if q.Grouped() == isolated {
			t.Fatalf("isolated=%v grouped=%v", isolated, q.Grouped())
		}
		for i := 0; i < 48; i++ {
			_ = eng.Append("s", []any{int64(i), int64(i % 8), 1.0})
		}
		eng.Drain()
		return collectSorted(q)
	}
	grouped := run(false)
	isolated := run(true)
	if len(grouped) == 0 || fmt.Sprint(grouped) != fmt.Sprint(isolated) {
		t.Fatalf("stream⋈table diverges:\ngrouped  %v\nisolated %v", grouped, isolated)
	}
}

// TestGroupLateJoiner: a member joining an active group starts at the
// next sealed basic window and then tracks the shared slice exactly.
func TestGroupLateJoiner(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	sql := "SELECT count(*) AS n FROM s [SIZE 10 SLIDE 10]"
	if _, err := eng.Register("early", sql, &RegisterOptions{NoChannel: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = eng.Append("s", []any{int64(i), int64(i), 1.0})
	}
	eng.Drain()
	late, err := eng.Register("late", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := eng.Groups(); len(g) != 1 || g[0].Members != 2 {
		t.Fatalf("groups = %+v", g)
	}
	for i := 20; i < 40; i++ {
		_ = eng.Append("s", []any{int64(i), int64(i), 1.0})
	}
	eng.Drain()
	got := collectSorted(late)
	if len(got) != 2 {
		t.Fatalf("late joiner evals = %d, want 2 (only windows sealed after join)", len(got))
	}
	for _, rows := range got {
		if len(rows) != 1 || rows[0] != "[10]" {
			t.Fatalf("late joiner rows = %v", got)
		}
	}
}

// TestGroupRecreateAfterTeardown cycles drop-last-member → re-register
// on the same group key and checks the fresh group keeps producing — the
// regression test for a torn-down group's RemoveWait sweeping up a
// same-keyed successor's scheduler transitions (group names now carry an
// instance nonce, and scheduler liveness is by identity).
func TestGroupRecreateAfterTeardown(t *testing.T) {
	eng := New(&Options{Workers: 4})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	sql := "SELECT count(*) AS n FROM s [SIZE 5 SLIDE 5]"
	next := 0
	for cycle := 0; cycle < 20; cycle++ {
		q, err := eng.Register(fmt.Sprintf("q%d", cycle), sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if err := eng.Append("s", []any{int64(next), int64(next), 1.0}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		eng.Drain()
		if got := collectSorted(q); len(got) != 1 || got[0][0] != "[5]" {
			t.Fatalf("cycle %d: results = %v, want [[5]]", cycle, got)
		}
		q.Stop() // last member: group torn down, next cycle re-creates it
	}
	if g := eng.Groups(); len(g) != 0 {
		t.Fatalf("groups leaked across cycles: %+v", g)
	}
}
