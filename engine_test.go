package datacell

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"datacell/internal/emitter"
)

// newTestEngine uses a logical clock so latency numbers are deterministic.
func newTestEngine(t *testing.T) (*Engine, *atomic.Int64) {
	t.Helper()
	var clock atomic.Int64
	clock.Store(1)
	e := New(&Options{Workers: 2, Now: func() int64 { return clock.Add(1) }})
	t.Cleanup(e.Close)
	return e, &clock
}

func mustExec(t *testing.T, e *Engine, src string) *Result {
	t.Helper()
	r, err := e.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return r
}

// collect drains currently available results without blocking beyond the
// scheduler drain.
func collect(e *Engine, q *Query) []emitter.Result {
	e.Drain()
	var out []emitter.Result
	for {
		select {
		case r := <-q.Out():
			out = append(out, r)
		default:
			return out
		}
	}
}

func rowsOf(rs []emitter.Result) []string {
	var out []string
	for _, r := range rs {
		n := r.Chunk.Rows()
		for i := 0; i < n; i++ {
			parts := []string{}
			for _, v := range r.Chunk.Row(i) {
				parts = append(parts, v.String())
			}
			out = append(out, strings.Join(parts, ","))
		}
	}
	return out
}

func TestDDLAndInsertAndSelect(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE city (id INT, name VARCHAR, pop FLOAT)")
	mustExec(t, e, "INSERT INTO city VALUES (1, 'ams', 0.9), (2, 'rot', 0.6), (3, 'utr', 0.4)")
	r := mustExec(t, e, "SELECT name FROM city WHERE pop > 0.5 ORDER BY name")
	if r.Chunk.Rows() != 2 || r.Chunk.Row(0)[0].S != "ams" {
		t.Errorf("select result:\n%s", r.Chunk)
	}
	if !strings.Contains(e.Catalog(), "city") {
		t.Error("catalog missing table")
	}
}

func TestExecErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	bad := []string{
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO ghost VALUES (1)",
		"SELECT x FROM ghost",
		"DROP TABLE ghost",
		"DROP STREAM ghost",
		"DROP QUERY ghost",
		"not sql at all",
	}
	for _, src := range bad {
		if _, err := e.Exec(src); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
	mustExec(t, e, "CREATE TABLE t (a INT)")
	if _, err := e.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := e.Exec("INSERT INTO t VALUES (a)"); err == nil {
		t.Error("non-literal insert should fail")
	}
	if _, err := e.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Error("duplicate create should fail")
	}
}

func TestContinuousQueryViaSQL(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	r := mustExec(t, e,
		"REGISTER QUERY tot AS SELECT sum(v) AS total FROM s [SIZE 4 SLIDE 2]")
	if r.Query == nil || r.Query.Mode() != "incremental" {
		t.Fatalf("register result = %+v", r)
	}
	mustExec(t, e, "INSERT INTO s VALUES (1, 1, 1.0), (2, 1, 2.0), (3, 1, 3.0), (4, 1, 4.0)")
	res := collect(e, r.Query)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if got := res[0].Chunk.Row(0)[0].F; got != 10 {
		t.Errorf("total = %v", got)
	}
	mustExec(t, e, "DROP QUERY tot")
	if _, ok := e.Query("tot"); ok {
		t.Error("query still registered after drop")
	}
}

func TestRegisterModes(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	// Auto on a non-windowed query falls back to reeval.
	q1, err := e.Register("q1", "SELECT k FROM s WHERE v > 1.0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Mode() != "reeval" {
		t.Errorf("q1 mode = %s", q1.Mode())
	}
	// Forced incremental on a non-decomposable plan errors.
	if _, err := e.Register("q2", "SELECT k FROM s", &RegisterOptions{Mode: ModeIncremental}); err == nil {
		t.Error("forced incremental should fail on non-windowed plan")
	}
	// Forced reeval on a windowed plan works.
	q3, err := e.Register("q3", "SELECT sum(v) FROM s [SIZE 4 SLIDE 2]",
		&RegisterOptions{Mode: ModeReeval})
	if err != nil {
		t.Fatal(err)
	}
	if q3.Mode() != "reeval" {
		t.Errorf("q3 mode = %s", q3.Mode())
	}
	// Duplicate names rejected.
	if _, err := e.Register("q1", "SELECT k FROM s", nil); err != nil {
		if !strings.Contains(err.Error(), "already registered") {
			t.Errorf("unexpected error: %v", err)
		}
	} else {
		t.Error("duplicate registration should fail")
	}
	// One-time query registration rejected.
	if _, err := e.Register("q4", "SELECT 1 AS one FROM s", nil); err != nil {
		t.Errorf("register with const projection should work: %v", err)
	}
}

func TestAppendAndMultipleQueries(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	hot, err := e.Register("hot", "SELECT k, v FROM s WHERE v >= 30.0", nil)
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.Register("all", "SELECT count(*) AS n FROM s [SIZE 2 SLIDE 2]", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e.Append("s", []any{time.UnixMicro(int64(i)), i, float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	hres := rowsOf(collect(e, hot))
	sort.Strings(hres)
	if len(hres) != 1 || hres[0] != "3,30" {
		t.Errorf("hot rows = %v", hres)
	}
	ares := collect(e, all)
	if len(ares) != 2 { // two tumbling windows of 2
		t.Fatalf("all results = %d", len(ares))
	}
	for _, r := range ares {
		if r.Chunk.Row(0)[0].I != 2 {
			t.Errorf("window count = %v", r.Chunk.Row(0))
		}
	}
}

func TestAppendErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	if err := e.Append("ghost", []any{1}); err == nil {
		t.Error("append to unknown stream should fail")
	}
	if err := e.Append("s", []any{time.Now()}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := e.Append("s", []any{struct{}{}, 1}); err == nil {
		t.Error("unsupported type should fail")
	}
}

func TestPauseResumeQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	q, err := e.Register("q", "SELECT v FROM s", nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Pause()
	if !q.Paused() {
		t.Fatal("not paused")
	}
	_ = e.Append("s", []any{time.UnixMicro(1), 1})
	e.Drain()
	if got := len(collect(e, q)); got != 0 {
		t.Fatalf("paused query emitted %d results", got)
	}
	q.Resume()
	res := collect(e, q)
	if len(res) != 1 {
		t.Fatalf("results after resume = %d", len(res))
	}
}

func TestPauseResumeStream(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	q, _ := e.Register("q", "SELECT v FROM s", nil)
	if err := e.PauseStream("s"); err != nil {
		t.Fatal(err)
	}
	_ = e.Append("s", []any{time.UnixMicro(1), 7})
	e.Drain()
	if got := len(collect(e, q)); got != 0 {
		t.Fatalf("paused stream delivered %d results", got)
	}
	if err := e.ResumeStream("s"); err != nil {
		t.Fatal(err)
	}
	res := collect(e, q)
	if len(res) != 1 || res[0].Chunk.Row(0)[0].I != 7 {
		t.Fatalf("results after stream resume = %v", res)
	}
	if e.PauseStream("ghost") == nil || e.ResumeStream("ghost") == nil {
		t.Error("pausing unknown stream should fail")
	}
}

func TestOneTimeQueryOverStreamSnapshot(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	// A slow query holds tuples in the basket; one-time SELECT sees them.
	q, _ := e.Register("q", "SELECT v FROM s", nil)
	q.Pause()
	mustExec(t, e, "INSERT INTO s VALUES (1, 5), (2, 6)")
	r := mustExec(t, e, "SELECT v FROM s WHERE v > 5")
	if r.Chunk.Rows() != 1 || r.Chunk.Row(0)[0].I != 6 {
		t.Errorf("snapshot query:\n%s", r.Chunk)
	}
	// Windowed one-time query is rejected.
	if _, err := e.Exec("SELECT v FROM s [SIZE 2]"); err == nil {
		t.Error("windowed one-time query should fail")
	}
}

func TestStreamTableJoinContinuous(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE dim (k INT, name VARCHAR)")
	mustExec(t, e, "INSERT INTO dim VALUES (1, 'one'), (2, 'two')")
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT)")
	q, err := e.Register("j", `
		SELECT d.name, count(*) AS n FROM s [SIZE 2 SLIDE 2]
		JOIN dim d ON s.k = d.k GROUP BY d.name ORDER BY d.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode() != "incremental" {
		t.Errorf("mode = %s", q.Mode())
	}
	mustExec(t, e, "INSERT INTO s VALUES (1, 1), (2, 1)")
	res := collect(e, q)
	if len(res) != 1 || res[0].Chunk.Row(0)[0].S != "one" || res[0].Chunk.Row(0)[1].I != 2 {
		t.Fatalf("join result = %v", res)
	}
}

func TestStreamStreamJoinContinuous(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM a (ts TIMESTAMP, k INT, x INT)")
	mustExec(t, e, "CREATE STREAM b (ts TIMESTAMP, k INT, y INT)")
	q, err := e.Register("ab", `
		SELECT a.x, b.y FROM a [SIZE 2 SLIDE 1], b [SIZE 2 SLIDE 1]
		WHERE a.k = b.k`, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO a VALUES (1, 7, 100), (2, 8, 200)")
	mustExec(t, e, "INSERT INTO b VALUES (1, 7, 111), (2, 9, 222)")
	res := collect(e, q)
	rows := rowsOf(res)
	if len(rows) != 1 || rows[0] != "100,111" {
		t.Fatalf("join rows = %v", rows)
	}
}

func TestDropStreamInUse(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	_, _ = e.Register("q", "SELECT v FROM s", nil)
	if _, err := e.Exec("DROP STREAM s"); err == nil {
		t.Fatal("dropping in-use stream should fail")
	}
	mustExec(t, e, "DROP QUERY q")
	mustExec(t, e, "DROP STREAM s")
}

func TestStatsAndNetworkString(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v FLOAT)")
	q, _ := e.Register("avg5", "SELECT avg(v) AS m FROM s [SIZE 2 SLIDE 1]", nil)
	mustExec(t, e, "INSERT INTO s VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
	e.Drain()
	st := e.Stats()
	if len(st.Baskets) != 1 || len(st.Queries) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Baskets[0].TotalIn != 3 || st.Queries[0].TuplesIn != 3 {
		t.Errorf("counters = %+v", st)
	}
	qs, err := e.QueryStats("avg5")
	if err != nil || qs.Evals != 2 {
		t.Errorf("query stats = %+v err=%v", qs, err)
	}
	if _, err := e.QueryStats("ghost"); err == nil {
		t.Error("unknown query stats should fail")
	}
	net := e.NetworkString()
	for _, want := range []string{"avg5", "<- s", "mode=incremental", "baskets:", "queries:"} {
		if !strings.Contains(net, want) {
			t.Errorf("network missing %q:\n%s", want, net)
		}
	}
	if names := e.QueryNames(); len(names) != 1 || names[0] != "avg5" {
		t.Errorf("QueryNames = %v", names)
	}
	_ = q
}

func TestPlanStrings(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	q, _ := e.Register("w", "SELECT k, sum(v) AS s FROM s [SIZE 8 SLIDE 2] GROUP BY k", nil)
	ps := q.PlanString()
	cs := q.ContinuousPlanString()
	if !strings.Contains(ps, "scan stream s [SIZE 8 SLIDE 2]") {
		t.Errorf("plan:\n%s", ps)
	}
	if !strings.Contains(cs, "merged per slide") {
		t.Errorf("continuous plan:\n%s", cs)
	}
}

func TestExecScript(t *testing.T) {
	e, _ := newTestEngine(t)
	r, err := e.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
		SELECT count(*) AS n FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chunk.Row(0)[0].I != 2 {
		t.Errorf("script result = %v", r.Chunk)
	}
	if _, err := e.ExecScript("CREATE TABLE x (a INT); BROKEN"); err == nil {
		t.Error("script with parse error should fail")
	}
}

func TestTimeWindowWithAdvanceTime(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	q, err := e.Register("tw",
		"SELECT count(*) AS n FROM s [RANGE 2 SECONDS SLIDE 1 SECOND ON ts]", nil)
	if err != nil {
		t.Fatal(err)
	}
	sec := int64(1_000_000)
	mustExec(t, e, fmt.Sprintf("INSERT INTO s VALUES (%d, 1), (%d, 2)", sec/2, sec+sec/2))
	e.Drain()
	e.AdvanceTime(3 * sec)
	res := collect(e, q)
	if len(res) != 2 {
		t.Fatalf("time-window results = %d", len(res))
	}
	if res[0].Chunk.Row(0)[0].I != 2 || res[1].Chunk.Row(0)[0].I != 1 {
		t.Errorf("counts = %v, %v", res[0].Chunk.Row(0), res[1].Chunk.Row(0))
	}
}

func TestLatencyMetadata(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	q, _ := e.Register("l", "SELECT v FROM s", nil)
	_ = e.Append("s", []any{time.UnixMicro(5), 1})
	res := collect(e, q)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	m := res[0].Meta
	if m.Query != "l" || m.Seq != 0 || m.LatencyUsec <= 0 {
		t.Errorf("meta = %+v", m)
	}
}

func TestEngineCloseIdempotentAndRejectsRegister(t *testing.T) {
	e := New(nil)
	e.Close()
	e.Close()
	if _, err := e.Register("q", "SELECT 1 FROM x", nil); err == nil {
		t.Error("register after close should fail")
	}
}

func TestHighVolumeThroughScheduler(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	q, err := e.Register("agg",
		"SELECT k, count(*) AS n FROM s [SIZE 100 SLIDE 50] GROUP BY k", nil)
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	for i := 0; i < total; i++ {
		_ = e.Append("s", []any{time.UnixMicro(int64(i)), i % 7, float64(i)})
	}
	e.Drain()
	st := q.Stats()
	if st.TuplesIn != total {
		t.Errorf("TuplesIn = %d, want %d", st.TuplesIn, total)
	}
	wantEvals := int64(total/50 - 1) // first window needs 2 slides
	if st.Evals != wantEvals {
		t.Errorf("Evals = %d, want %d", st.Evals, wantEvals)
	}
}
