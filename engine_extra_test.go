package datacell

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/emitter"
)

// emitterFunc adapts a row-count callback into an Emitter.
func emitterFunc(f func(rows int)) emitter.Emitter {
	return emitter.Func(func(c *bat.Chunk, _ emitter.Meta) { f(c.Rows()) })
}

// TestConcurrentRegisterStopWhileStreaming hammers the engine with
// concurrent appends, registrations and stops — the demo's "queries may be
// removed at any time" under load. The assertion is absence of deadlock,
// panics and races (run under -race in CI).
func TestConcurrentRegisterStopWhileStreaming(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // continuous producer
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Append("s", []any{time.UnixMicro(int64(i)), i % 5, float64(i)})
			i++
		}
	}()
	for round := 0; round < 20; round++ {
		name := fmt.Sprintf("q%d", round)
		q, err := e.Register(name,
			"SELECT k, count(*) AS n FROM s [SIZE 16 SLIDE 4] GROUP BY k",
			&RegisterOptions{NoChannel: true})
		if err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			q.Pause()
			q.Resume()
		}
		q.Stop()
	}
	close(stop)
	wg.Wait()
	e.Drain()
	// All transient queries gone; basket must not leak consumers.
	st := e.Stats()
	if st.Baskets[0].Consumers != 0 {
		t.Errorf("leaked consumers: %d", st.Baskets[0].Consumers)
	}
}

// TestResultChannelOverflow verifies the documented lag behavior: when a
// consumer never drains, results are dropped and counted, and the query
// network keeps flowing.
func TestResultChannelOverflow(t *testing.T) {
	var clock atomic.Int64
	e := New(&Options{Workers: 2, ResultBuffer: 4, Now: func() int64 { return clock.Add(1) }})
	defer e.Close()
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	// A size-1 tumbling window forces one result per tuple regardless of
	// append batching.
	q, _ := e.Register("q", "SELECT v FROM s [SIZE 1]", nil)
	for i := 0; i < 50; i++ {
		_ = e.Append("s", []any{time.UnixMicro(int64(i)), i})
	}
	e.Drain()
	if q.Dropped() == 0 {
		t.Error("expected dropped results with a full buffer")
	}
	st := q.Stats()
	if st.Evals < 50 {
		t.Errorf("query stalled: evals = %d", st.Evals)
	}
}

func TestWindowedDistinct(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT)")
	q, err := e.Register("q",
		"SELECT DISTINCT k FROM s [SIZE 4 SLIDE 4] ORDER BY k", nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO s VALUES (1, 3), (2, 1), (3, 3), (4, 1)")
	res := collect(e, q)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	got := rowsOf(res)
	if len(got) != 2 || got[0] != "1" || got[1] != "3" {
		t.Errorf("distinct rows = %v", got)
	}
}

func TestExpressionsInContinuousQuery(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	q, err := e.Register("q", `
		SELECT k % 2 AS parity, sum(v * 2.0) AS dbl, max(abs(v - 10.0)) AS dev
		FROM s [SIZE 4 SLIDE 4]
		GROUP BY k % 2
		ORDER BY parity`, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO s VALUES (1, 1, 4.0), (2, 2, 6.0), (3, 3, 12.0), (4, 4, 20.0)")
	res := collect(e, q)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	rows := rowsOf(res)
	// parity 0: v ∈ {6, 20} → dbl 52, dev max(|6-10|,|20-10|)=10
	// parity 1: v ∈ {4, 12} → dbl 32, dev max(6, 2)=6
	if rows[0] != "0,52,10" || rows[1] != "1,32,6" {
		t.Errorf("rows = %v", rows)
	}
}

func TestMultiColumnOrderByInWindow(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, a INT, b INT)")
	q, err := e.Register("q",
		"SELECT a, b FROM s [SIZE 4 SLIDE 4] ORDER BY a DESC, b ASC", nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO s VALUES (1, 1, 9), (2, 2, 5), (3, 2, 3), (4, 1, 1)")
	rows := rowsOf(collect(e, q))
	want := []string{"2,3", "2,5", "1,1", "1,9"}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
}

func TestTumblingWindowNoOverlap(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	q, _ := e.Register("q", "SELECT sum(v) AS t FROM s [SIZE 3]", nil)
	for i := 1; i <= 9; i++ {
		_ = e.Append("s", []any{time.UnixMicro(int64(i)), i})
	}
	res := collect(e, q)
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	want := []int64{6, 15, 24}
	for i, r := range res {
		if r.Chunk.Row(0)[0].I != want[i] {
			t.Errorf("window %d = %v, want %d", i, r.Chunk.Row(0), want[i])
		}
	}
}

func TestQueryOverflowingVacuum(t *testing.T) {
	// Enough tuples to trigger basket vacuuming several times; counters
	// must balance and results stay correct.
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	q, _ := e.Register("q", "SELECT count(*) AS n FROM s [SIZE 1000]", nil)
	const total = 20000
	for i := 0; i < total; i += 100 {
		rows := make([][]any, 100)
		for j := range rows {
			rows[j] = []any{time.UnixMicro(int64(i + j)), i + j}
		}
		_ = e.Append("s", rows)
	}
	e.Drain()
	res := collect(e, q)
	if len(res) != total/1000 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Chunk.Row(0)[0].I != 1000 {
			t.Errorf("count = %v", r.Chunk.Row(0))
		}
	}
	st := e.Stats()
	if st.Baskets[0].TotalDrop == 0 {
		t.Error("vacuum never ran")
	}
	if st.Baskets[0].Len > 8192 {
		t.Errorf("basket grew unboundedly: %d", st.Baskets[0].Len)
	}
}

func TestOneTimeJoinOfTwoTables(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE a (k INT, x VARCHAR)")
	mustExec(t, e, "CREATE TABLE b (k INT, y VARCHAR)")
	mustExec(t, e, "INSERT INTO a VALUES (1, 'ax'), (2, 'ay')")
	mustExec(t, e, "INSERT INTO b VALUES (2, 'bz')")
	r := mustExec(t, e, "SELECT a.x, b.y FROM a, b WHERE a.k = b.k")
	if r.Chunk.Rows() != 1 || r.Chunk.Row(0)[0].S != "ay" {
		t.Errorf("table join:\n%s", r.Chunk)
	}
}

func TestRegisterWithExtraEmitter(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	var sb strings.Builder
	var mu sync.Mutex
	q, err := e.Register("q", "SELECT v FROM s", &RegisterOptions{
		Emitter: emitterFunc(func(rows int) {
			mu.Lock()
			fmt.Fprintf(&sb, "emit %d;", rows)
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO s VALUES (1, 7)")
	e.Drain()
	mu.Lock()
	got := sb.String()
	mu.Unlock()
	if got != "emit 1;" {
		t.Errorf("extra emitter saw %q", got)
	}
	// The channel still works alongside.
	if len(collect(e, q)) != 1 {
		t.Error("channel emitter lost the result")
	}
}
