package datacell

import (
	"fmt"
	"sort"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/factory"
)

// Stats is an engine-wide snapshot: the observable quantities of the
// demo's monitoring panes (basket occupancy and rates, per-query firings
// and latencies).
type Stats struct {
	Baskets []basket.Stats
	Queries []factory.Stats
}

// GroupInfo is one shared execution group's observable state.
type GroupInfo struct {
	// Key is the group key (stream | window kind | slide | schema; join
	// groups pair two of these with ⋈).
	Key string
	// Kind is "scan" for single-stream groups, "join" for stream pairs.
	Kind string
	// Members is the number of member queries sharing the slice.
	Members int
	// Shards is the group's shared firing count (both sides for joins).
	Shards int
	// WindowsOut counts basic windows fanned out to members.
	WindowsOut int64
	// LiveBufs counts sealed window buffers still referenced by a member.
	LiveBufs int64
	// DagNodes counts distinct operator nodes in the group's shared
	// operator DAG(s) — common member sub-tails registered once.
	DagNodes int
	// MemoHits / MemoMisses are the DAG memo counters: hits are operator
	// evaluations served from a sibling's memoized output, misses actual
	// evaluations. HitRate = hits / (hits + misses).
	MemoHits   int64
	MemoMisses int64
	// MergeClasses counts the group-owned merge rings: classes of two or
	// more members whose full-window merges are byte-identical
	// (plan.MergeKey; plan.JoinMergeKey for join groups) and therefore
	// evaluate once per sealed window.
	// MergeHits / MergeMisses are the merged-view memo counters — for an
	// N-member class, one miss and N-1 hits per full window.
	MergeClasses int
	MergeHits    int64
	MergeMisses  int64
	// PostNodes counts distinct post-merge fragment operators (HAVING
	// filters, final aggregates, sorts, limits) in the group's post-merge
	// trie; PostHits / PostMisses are its memo counters.
	PostNodes  int
	PostHits   int64
	PostMisses int64
	// PairCaches / CachedPairs / PairsComputed describe a join group's
	// shared pair caches (one cache per distinct join fingerprint).
	PairCaches    int
	CachedPairs   int
	PairsComputed int64
}

// MemoHitRate is the group's DAG memo hit rate in [0, 1] (0 when the DAG
// has never evaluated).
func (gi GroupInfo) MemoHitRate() float64 { return hitRate(gi.MemoHits, gi.MemoMisses) }

// MergeHitRate is the shared-merge hit rate in [0, 1]: the fraction of
// full-window merge requests served from a class sibling's evaluation.
func (gi GroupInfo) MergeHitRate() float64 { return hitRate(gi.MergeHits, gi.MergeMisses) }

// PostHitRate is the post-merge trie's memo hit rate in [0, 1].
func (gi GroupInfo) PostHitRate() float64 { return hitRate(gi.PostHits, gi.PostMisses) }

func hitRate(hits, misses int64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// factoryGroups resolves the catalog's opaque group registry entries to
// their runtime contract, sorted by key — the one place the any-typed
// catalog boundary is crossed.
func (e *Engine) factoryGroups() []factory.SharedGroup {
	var out []factory.SharedGroup
	for _, key := range e.cat.GroupKeys() {
		if gv, ok := e.cat.Group(key); ok {
			if g, ok := gv.(factory.SharedGroup); ok {
				out = append(out, g)
			}
		}
	}
	return out
}

// Groups snapshots the shared execution groups, sorted by key.
func (e *Engine) Groups() []GroupInfo {
	var out []GroupInfo
	for _, g := range e.factoryGroups() {
		caches, pairs, computed := g.PairStats()
		mClasses, mHits, mMisses := g.MergeStats()
		pNodes, pHits, pMisses := g.PostStats()
		out = append(out, GroupInfo{
			Key:           g.Key(),
			Kind:          g.Kind(),
			Members:       g.Members(),
			Shards:        g.Shards(),
			WindowsOut:    g.WindowsOut(),
			LiveBufs:      g.LiveBufs(),
			DagNodes:      g.DagNodes(),
			MemoHits:      g.MemoHits(),
			MemoMisses:    g.MemoMisses(),
			MergeClasses:  mClasses,
			MergeHits:     mHits,
			MergeMisses:   mMisses,
			PostNodes:     pNodes,
			PostHits:      pHits,
			PostMisses:    pMisses,
			PairCaches:    caches,
			CachedPairs:   pairs,
			PairsComputed: computed,
		})
	}
	return out
}

// Stats snapshots every basket and query counter.
func (e *Engine) Stats() Stats {
	var out Stats
	for _, n := range e.cat.StreamNames() {
		s, _ := e.cat.Stream(n)
		out.Baskets = append(out.Baskets, s.Basket.Stats())
	}
	e.mu.Lock()
	names := make([]string, 0, len(e.queries))
	for n := range e.queries {
		names = append(names, n)
	}
	sort.Strings(names)
	qs := make([]*Query, 0, len(names))
	for _, n := range names {
		qs = append(qs, e.queries[n])
	}
	e.mu.Unlock()
	for _, q := range qs {
		out.Queries = append(out.Queries, q.Stats())
	}
	return out
}

// QueryStats returns one query's counters.
func (e *Engine) QueryStats(name string) (factory.Stats, error) {
	e.mu.Lock()
	q, ok := e.queries[name]
	e.mu.Unlock()
	if !ok {
		return factory.Stats{}, fmt.Errorf("datacell: no query %q", name)
	}
	return q.Stats(), nil
}

// Query looks up a registered continuous query by name.
func (e *Engine) Query(name string) (*Query, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	return q, ok
}

// QueryNames lists registered continuous queries, sorted.
func (e *Engine) QueryNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for n := range e.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NetworkString renders the continuous query network: which query binds
// which baskets, each side annotated with its live counters. It is the
// terminal equivalent of the demo GUI's network pane (Figure 3).
func (e *Engine) NetworkString() string {
	st := e.Stats()
	var b strings.Builder
	b.WriteString("baskets:\n")
	for _, bs := range st.Baskets {
		state := ""
		if bs.Paused {
			state = " [paused]"
		}
		fmt.Fprintf(&b, "  %-16s len=%-8d in=%-10d dropped=%-10d consumers=%d%s\n",
			bs.Name, bs.Len, bs.TotalIn, bs.TotalDrop, bs.Consumers, state)
	}
	b.WriteString("queries:\n")
	e.mu.Lock()
	qs := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].name < qs[j].name })
	for _, q := range qs {
		s := q.Stats()
		paused := ""
		if q.Paused() {
			paused = " [paused]"
		}
		avgLat := int64(0)
		if s.Evals > 0 {
			avgLat = s.SumLatency / s.Evals
		}
		shared := ""
		if q.Grouped() {
			shared = " [grouped]"
		}
		fmt.Fprintf(&b, "  %-16s <- %-24s mode=%-12s evals=%-8d in=%-10d out=%-10d avg_lat=%dµs%s%s\n",
			s.Name, strings.Join(q.fac.Baskets(), ","), s.Mode,
			s.Evals, s.TuplesIn, s.RowsOut, avgLat, shared, paused)
	}
	if groups := e.Groups(); len(groups) > 0 {
		b.WriteString("groups:\n")
		for _, g := range groups {
			fmt.Fprintf(&b, "  %-48s kind=%-4s members=%-4d shards=%-3d windows=%-8d livebufs=%-4d dag=%-3d memo=%.0f%%",
				g.Key, g.Kind, g.Members, g.Shards, g.WindowsOut, g.LiveBufs,
				g.DagNodes, 100*g.MemoHitRate())
			if g.MergeClasses > 0 || g.PostNodes > 0 {
				fmt.Fprintf(&b, " mergeclasses=%d merge=%.0f%% postnodes=%d post=%.0f%%",
					g.MergeClasses, 100*g.MergeHitRate(), g.PostNodes, 100*g.PostHitRate())
			}
			if g.Kind == "join" {
				fmt.Fprintf(&b, " paircaches=%d pairs=%d computed=%d", g.PairCaches, g.CachedPairs, g.PairsComputed)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
