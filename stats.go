package datacell

import (
	"fmt"
	"sort"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/factory"
)

// Stats is an engine-wide snapshot: the observable quantities of the
// demo's monitoring panes (basket occupancy and rates, per-query firings
// and latencies).
type Stats struct {
	Baskets []basket.Stats
	Queries []factory.Stats
}

// Stats snapshots every basket and query counter.
func (e *Engine) Stats() Stats {
	var out Stats
	for _, n := range e.cat.StreamNames() {
		s, _ := e.cat.Stream(n)
		out.Baskets = append(out.Baskets, s.Basket.Stats())
	}
	e.mu.Lock()
	names := make([]string, 0, len(e.queries))
	for n := range e.queries {
		names = append(names, n)
	}
	sort.Strings(names)
	qs := make([]*Query, 0, len(names))
	for _, n := range names {
		qs = append(qs, e.queries[n])
	}
	e.mu.Unlock()
	for _, q := range qs {
		out.Queries = append(out.Queries, q.Stats())
	}
	return out
}

// QueryStats returns one query's counters.
func (e *Engine) QueryStats(name string) (factory.Stats, error) {
	e.mu.Lock()
	q, ok := e.queries[name]
	e.mu.Unlock()
	if !ok {
		return factory.Stats{}, fmt.Errorf("datacell: no query %q", name)
	}
	return q.Stats(), nil
}

// Query looks up a registered continuous query by name.
func (e *Engine) Query(name string) (*Query, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	return q, ok
}

// QueryNames lists registered continuous queries, sorted.
func (e *Engine) QueryNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for n := range e.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NetworkString renders the continuous query network: which query binds
// which baskets, each side annotated with its live counters. It is the
// terminal equivalent of the demo GUI's network pane (Figure 3).
func (e *Engine) NetworkString() string {
	st := e.Stats()
	var b strings.Builder
	b.WriteString("baskets:\n")
	for _, bs := range st.Baskets {
		state := ""
		if bs.Paused {
			state = " [paused]"
		}
		fmt.Fprintf(&b, "  %-16s len=%-8d in=%-10d dropped=%-10d consumers=%d%s\n",
			bs.Name, bs.Len, bs.TotalIn, bs.TotalDrop, bs.Consumers, state)
	}
	b.WriteString("queries:\n")
	e.mu.Lock()
	qs := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].name < qs[j].name })
	for _, q := range qs {
		s := q.Stats()
		paused := ""
		if q.Paused() {
			paused = " [paused]"
		}
		avgLat := int64(0)
		if s.Evals > 0 {
			avgLat = s.SumLatency / s.Evals
		}
		fmt.Fprintf(&b, "  %-16s <- %-24s mode=%-12s evals=%-8d in=%-10d out=%-10d avg_lat=%dµs%s\n",
			s.Name, strings.Join(q.fac.Baskets(), ","), s.Mode,
			s.Evals, s.TuplesIn, s.RowsOut, avgLat, paused)
	}
	return b.String()
}
