// Weblog: online analysis of a web-server log stream — one of the
// motivating applications in the paper's introduction ("web log analysis
// requires fast analysis of big streaming data for decision support").
//
// It demonstrates the two query paradigms in one fabric: continuous
// queries over the request stream joined with a persistent page-metadata
// table, plus one-time queries over the same data, and error-rate
// monitoring with HAVING.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datacell"
)

func main() {
	eng := datacell.New(nil)
	defer eng.Close()

	must := func(src string) {
		if _, err := eng.Exec(src); err != nil {
			log.Fatalf("%s: %v", src, err)
		}
	}

	// Persistent dimension table: page metadata.
	must("CREATE TABLE pages (path VARCHAR, section VARCHAR, weight FLOAT)")
	must(`INSERT INTO pages VALUES
		('/',        'home',     1.0),
		('/search',  'search',   2.0),
		('/cart',    'checkout', 5.0),
		('/pay',     'checkout', 9.0),
		('/help',    'support',  0.5)`)

	// The request stream.
	must("CREATE STREAM requests (ts TIMESTAMP, path VARCHAR, status INT, bytes INT, ms FLOAT)")

	// Q1: per-section traffic value over a sliding window, joining the
	// stream with the persistent table inside the continuous plan.
	bySection, err := eng.RegisterQuery("by_section", `
		SELECT p.section, count(*) AS hits, sum(r.bytes) AS bytes,
		       avg(r.ms) AS avg_ms
		FROM requests [SIZE 400 SLIDE 100] r
		JOIN pages p ON r.path = p.path
		GROUP BY p.section
		ORDER BY hits DESC`)
	if err != nil {
		log.Fatal(err)
	}

	// Q2: error-rate alarm — sections of the site throwing 5xx.
	errors5xx, err := eng.RegisterQuery("errors_5xx", `
		SELECT path, count(*) AS errors
		FROM requests [SIZE 400 SLIDE 100]
		WHERE status >= 500
		GROUP BY path
		HAVING count(*) >= 3
		ORDER BY errors DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queries: %s (%s), %s (%s)\n\n",
		bySection.Name(), bySection.Mode(), errors5xx.Name(), errors5xx.Mode())

	// Replay synthetic traffic.
	paths := []string{"/", "/", "/", "/search", "/search", "/cart", "/pay", "/help"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1200; i++ {
		status := 200
		if rng.Intn(100) < 4 {
			status = 500 + rng.Intn(4)
		}
		err := eng.Append("requests", []any{
			int64(i) * 1000, // logical µs timestamps
			paths[rng.Intn(len(paths))],
			status,
			200 + rng.Intn(5000),
			float64(5 + rng.Intn(200)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	eng.Drain()

	fmt.Println("== latest per-section window ==")
	printLast(bySection)
	fmt.Println("== 5xx alarms ==")
	printLast(errors5xx)

	// A one-time query over the same fabric: the persistent table.
	res, err := eng.Query1(`
		SELECT section, count(*) AS pages FROM pages GROUP BY section ORDER BY section`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== one-time query over the pages table ==\n%s\n", res)

	fmt.Println(eng.NetworkString())
}

// printLast drains a query's channel and prints the newest result.
func printLast(q *datacell.Query) {
	var last fmt.Stringer
	n := 0
	for {
		select {
		case r := <-q.Out():
			last = r.Chunk
			n++
		default:
			if last != nil {
				fmt.Printf("(%d evaluations)\n%s\n", n, last)
			} else {
				fmt.Println("(no results)")
			}
			return
		}
	}
}
