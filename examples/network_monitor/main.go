// Network monitor: the paper's cloud/network-monitoring motivation —
// correlate two live streams (flows and alerts) with a stream⋈stream
// windowed join, demonstrate pause/resume of queries and streams, and
// inspect plan shapes the way the demo GUI does.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datacell"
)

func main() {
	eng := datacell.New(nil)
	defer eng.Close()

	must := func(src string) {
		if _, err := eng.Exec(src); err != nil {
			log.Fatalf("%s: %v", src, err)
		}
	}
	must("CREATE STREAM flows  (ts TIMESTAMP, src INT, dst INT, bytes INT)")
	must("CREATE STREAM alerts (ts TIMESTAMP, src INT, severity INT)")

	// Q1: heavy hitters per source over a sliding window.
	heavy, err := eng.RegisterQuery("heavy_hitters", `
		SELECT src, sum(bytes) AS total
		FROM flows [SIZE 300 SLIDE 100]
		GROUP BY src
		HAVING sum(bytes) > 500000
		ORDER BY total DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}

	// Q2: flows from sources with an active high-severity alert — a
	// windowed stream⋈stream join, executed incrementally by caching
	// per-basic-window-pair join results.
	suspicious, err := eng.RegisterQuery("suspicious", `
		SELECT f.src, f.dst, f.bytes, a.severity
		FROM flows [SIZE 300 SLIDE 100] f, alerts [SIZE 300 SLIDE 100] a
		WHERE f.src = a.src AND a.severity >= 8`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("normal plan of %q:\n%s\n", suspicious.Name(), suspicious.PlanString())
	fmt.Printf("continuous plan of %q:\n%s\n", suspicious.Name(), suspicious.ContinuousPlanString())

	rng := rand.New(rand.NewSource(3))
	feed := func(n int) {
		for i := 0; i < n; i++ {
			src := rng.Intn(50)
			if err := eng.Append("flows", []any{
				int64(i) * 100, src, rng.Intn(1000), 1000 + rng.Intn(20000),
			}); err != nil {
				log.Fatal(err)
			}
			if rng.Intn(10) == 0 {
				if err := eng.Append("alerts", []any{
					int64(i) * 100, src, 1 + rng.Intn(10),
				}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	feed(600)
	eng.Drain()
	fmt.Println("== heavy hitters ==")
	printLast(heavy)
	fmt.Println("== suspicious flows ==")
	printLast(suspicious)

	// Demo §4 "Pause and Resume": pause the join, keep streaming; events
	// accumulate in the baskets and are processed on resume.
	suspicious.Pause()
	feed(300)
	eng.Drain()
	fmt.Printf("paused: %v; results while paused: %d\n",
		suspicious.Paused(), countPending(suspicious))
	suspicious.Resume()
	eng.Drain()
	fmt.Printf("after resume: %d new results\n", countPending(suspicious))

	// Pausing a stream holds arrivals inside the basket.
	if err := eng.PauseStream("alerts"); err != nil {
		log.Fatal(err)
	}
	feed(100)
	if err := eng.ResumeStream("alerts"); err != nil {
		log.Fatal(err)
	}
	eng.Drain()

	fmt.Println(eng.NetworkString())
}

func printLast(q *datacell.Query) {
	var last fmt.Stringer
	for {
		select {
		case r := <-q.Out():
			last = r.Chunk
		default:
			if last != nil {
				fmt.Println(last)
			} else {
				fmt.Println("(no results)")
			}
			return
		}
	}
}

func countPending(q *datacell.Query) int {
	n := 0
	for {
		select {
		case <-q.Out():
			n++
		default:
			return n
		}
	}
}
