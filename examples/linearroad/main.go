// Linear Road: run the benchmark's continuous query set (segment
// statistics, vehicle counts, accident detection) over generated traffic
// and check the ≤5 s response-time constraint the paper claims DataCell
// meets — with tolls derived from the segment-statistics output.
package main

import (
	"flag"
	"fmt"
	"log"

	"datacell"
	"datacell/internal/linearroad"
	"datacell/internal/monitor"
)

func main() {
	xways := flag.Int("xways", 1, "number of expressways (the benchmark's L factor)")
	cars := flag.Int("cars", 500, "cars per expressway")
	dur := flag.Int("duration", 600, "simulated seconds")
	flag.Parse()

	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()

	if _, err := eng.Exec(linearroad.CreateStreamSQL); err != nil {
		log.Fatal(err)
	}
	segStats, err := eng.RegisterQuery("seg_stats", linearroad.SegmentStatsSQL())
	if err != nil {
		log.Fatal(err)
	}
	accidents, err := eng.RegisterQuery("accidents", linearroad.AccidentSQL())
	if err != nil {
		log.Fatal(err)
	}

	cfg := linearroad.Config{
		Xways: *xways, CarsPerXway: *cars, DurationSec: *dur,
		ReportEverySec: 30, AccidentProb: 0.01, Seed: 42,
	}
	fmt.Printf("generating traffic: %s\n", cfg.Summary())
	chunks := linearroad.Generate(cfg)
	var reports int64
	for _, c := range chunks {
		if err := eng.Append("lr_pos", c); err != nil {
			log.Fatal(err)
		}
		reports += int64(c.Rows())
	}
	eng.Drain()
	eng.AdvanceTime(int64(cfg.DurationSec+300) * 1_000_000)
	eng.Drain()
	fmt.Printf("pushed %d position reports\n\n", reports)

	// Tolls derive from segment statistics (average speed, volume).
	var latencies []int64
	tolled := 0
	for {
		select {
		case r := <-segStats.Out():
			latencies = append(latencies, r.Meta.LatencyUsec)
			for i := 0; i < r.Chunk.Rows(); i++ {
				row := r.Chunk.Row(i)
				if toll := linearroad.Toll(row[3].F, row[4].I); toll > 0 {
					tolled++
				}
			}
		default:
			goto done
		}
	}
done:
	fmt.Printf("segment-stat evaluations: %d, tolled segment-windows: %d\n",
		len(latencies), tolled)

	accCount := 0
	for {
		select {
		case r := <-accidents.Out():
			accCount += r.Chunk.Rows()
		default:
			fmt.Printf("accident segment detections: %d\n\n", accCount)
			goto check
		}
	}
check:
	ok, worst := linearroad.CheckResponse(latencies)
	fmt.Printf("response-time constraint (<= %v): ok=%v worst=%dµs p99=%dµs\n",
		linearroad.ResponseConstraint, ok, worst, monitor.Percentile(latencies, 99))
	fmt.Println()
	fmt.Println(eng.NetworkString())
}
