// Quickstart: the smallest useful DataCell program. It creates a sensor
// stream, registers one continuous sliding-window query, pushes a burst of
// readings and prints every emitted result set.
package main

import (
	"fmt"
	"log"
	"time"

	"datacell"
)

func main() {
	eng := datacell.New(nil)
	defer eng.Close()

	// A stream is a schema plus a basket buffering in-flight events.
	if _, err := eng.Exec("CREATE STREAM sensors (ts TIMESTAMP, room INT, temp FLOAT)"); err != nil {
		log.Fatal(err)
	}

	// The continuous query: per-room average temperature over the last 8
	// readings, re-reported every 4. The engine picks the incremental
	// execution mode because the plan decomposes into cacheable
	// basic-window partials.
	q, err := eng.RegisterQuery("room_avg", `
		SELECT room, avg(temp) AS avg_temp, max(temp) AS max_temp
		FROM sensors [SIZE 8 SLIDE 4]
		GROUP BY room
		ORDER BY room`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s (mode=%s)\n\ncontinuous plan:\n%s\n",
		q.Name(), q.Mode(), q.ContinuousPlanString())

	// Push two windows worth of readings.
	for i := 0; i < 16; i++ {
		err := eng.Append("sensors",
			[]any{time.Now(), i % 2, 20.0 + float64(i)})
		if err != nil {
			log.Fatal(err)
		}
	}
	eng.Drain()

	// Each Out element is one window evaluation.
	for {
		select {
		case r := <-q.Out():
			fmt.Printf("-- window result seq=%d latency=%dµs --\n%s\n",
				r.Meta.Seq, r.Meta.LatencyUsec, r.Chunk)
		default:
			fmt.Println(eng.NetworkString())
			return
		}
	}
}
