package datacell

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"datacell/internal/bat"
	"datacell/internal/receptor"
)

// LoadStreamCSV replays newline-separated CSV into a stream's basket in
// batches — the programmatic form of the demo's "predefined data files
// which can be streamed in the system". It returns the number of tuples
// appended.
func (e *Engine) LoadStreamCSV(stream string, r io.Reader, batch int) (int64, error) {
	bk, err := e.Basket(stream)
	if err != nil {
		return 0, err
	}
	return receptor.ReplayCSV(r, bk, batch, e.now)
}

// LoadStreamCSVFile is LoadStreamCSV over a file path.
func (e *Engine) LoadStreamCSVFile(stream, path string, batch int) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return e.LoadStreamCSV(stream, f, batch)
}

// LoadTableCSV bulk-loads CSV into a persistent table. Empty lines and
// lines starting with '#' are skipped; a malformed line aborts the load
// with its line number (rows already buffered are not applied).
func (e *Engine) LoadTableCSV(table string, r io.Reader) (int64, error) {
	t, ok := e.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("datacell: unknown table %q", table)
	}
	sch := t.Schema()
	chunk := bat.NewChunk(sch)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var total int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vals, err := receptor.ParseLine(sch, line)
		if err != nil {
			return 0, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := chunk.AppendRow(vals...); err != nil {
			return 0, fmt.Errorf("line %d: %w", lineNo, err)
		}
		total++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if chunk.Rows() > 0 {
		if err := t.Append(chunk); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// SaveCSV writes a chunk (e.g. a query result) as CSV rows.
func SaveCSV(w io.Writer, c *bat.Chunk) error {
	rows := c.Rows()
	for i := 0; i < rows; i++ {
		vals := c.Row(i)
		parts := make([]string, len(vals))
		for j, v := range vals {
			parts[j] = v.String()
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}
