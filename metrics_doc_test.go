package datacell_test

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"datacell"

	"datacell/internal/fabric"
	"datacell/internal/metrics"
	"datacell/internal/monitor"
)

// docRow is one parsed table row of docs/METRICS.md.
type docRow struct {
	typ    string
	labels string
	help   string
}

// parseMetricsDoc extracts every `| `datacell_...` | type | labels | help |`
// table row from docs/METRICS.md.
func parseMetricsDoc(t *testing.T) map[string]docRow {
	t.Helper()
	f, err := os.Open("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows := map[string]docRow{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "| `datacell_") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 4 {
			t.Fatalf("malformed row (want 4 cells): %s", line)
		}
		name := strings.Trim(strings.TrimSpace(cells[0]), "`")
		if _, dup := rows[name]; dup {
			t.Errorf("docs/METRICS.md lists %s twice", name)
		}
		rows[name] = docRow{
			typ:    strings.TrimSpace(cells[1]),
			labels: strings.TrimSpace(cells[2]),
			help:   strings.TrimSpace(cells[3]),
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestMetricsDocMatchesRegistry pins docs/METRICS.md to the collector
// declarations: every exported family must have a doc row with the same
// type, label set and help text, and the doc must not list families the
// code no longer exports.
func TestMetricsDocMatchesRegistry(t *testing.T) {
	rows := parseMetricsDoc(t)

	var descs []metrics.Desc
	descs = append(descs, datacell.EngineMetricDescs...)
	descs = append(descs, monitor.RateMetricDescs...)
	descs = append(descs, fabric.CoordinatorMetricDescs...)
	descs = append(descs, fabric.WorkerMetricDescs...)

	seen := map[string]bool{}
	for _, d := range descs {
		seen[d.Name] = true
		row, ok := rows[d.Name]
		if !ok {
			t.Errorf("exported family %s has no row in docs/METRICS.md", d.Name)
			continue
		}
		if row.typ != string(d.Type) {
			t.Errorf("%s: doc says type %q, code says %q", d.Name, row.typ, d.Type)
		}
		wantLabels := "—"
		if len(d.Labels) > 0 {
			var parts []string
			for _, l := range d.Labels {
				parts = append(parts, "`"+l+"`")
			}
			wantLabels = strings.Join(parts, ", ")
		}
		if row.labels != wantLabels {
			t.Errorf("%s: doc labels %q, code labels %q", d.Name, row.labels, wantLabels)
		}
		if row.help != d.Help {
			t.Errorf("%s: doc help drifted\n doc:  %s\n code: %s", d.Name, row.help, d.Help)
		}
	}
	for name := range rows {
		if !seen[name] {
			t.Errorf("docs/METRICS.md row %s matches no exported family", name)
		}
	}
	if len(rows) == 0 {
		t.Fatal("no metric rows parsed from docs/METRICS.md")
	}
}
