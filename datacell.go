// Package datacell is a streaming column-store: a Go reproduction of
// MonetDB/DataCell (Liarou, Idreos, Manegold, Kersten, VLDB 2012), which
// extends a column-oriented DBMS kernel with online analytics. Stream
// processing is a query-scheduling task on top of ordinary columnar query
// plans: incoming events land in baskets, continuous queries are factories
// fired by a Petri-net scheduler, and sliding windows are processed
// incrementally by caching per-basic-window columnar intermediates.
//
// The engine speaks a SQL'03 subset extended with the paper's continuous
// constructs:
//
//	CREATE STREAM trades (ts TIMESTAMP, sym STRING, px FLOAT);
//	CREATE TABLE  limits (sym STRING, cap FLOAT);
//	REGISTER INCREMENTAL QUERY vwap AS
//	    SELECT sym, sum(px)/count(*) FROM trades [SIZE 1000 SLIDE 100]
//	    GROUP BY sym;
//
// Continuous queries interleave freely with one-time queries over tables
// and over the current basket contents — the paper's "two query paradigms"
// in one fabric.
package datacell

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/catalog"
	"datacell/internal/plan"
	"datacell/internal/scheduler"
	"datacell/internal/sql"
	"datacell/internal/window"
)

// Options configures an Engine.
type Options struct {
	// Workers is the scheduler worker-pool size (default 4).
	Workers int
	// Now supplies the engine clock in microseconds since the epoch.
	// Benchmarks and tests inject logical clocks; the default is the
	// system clock.
	Now func() int64
	// ResultBuffer is the per-query result channel capacity (default
	// 1024). When a consumer lags, results are dropped and counted rather
	// than stalling the query network.
	ResultBuffer int
	// Heartbeat, when positive, periodically advances the time-window
	// watermark to the engine clock, closing open buckets while streams
	// are idle — the scheduler's time constraints ("possibly delaying
	// events in their baskets for some time", then forcing evaluation).
	// Use it when stream timestamps follow the engine clock; leave zero
	// for event-time replay and drive AdvanceTime explicitly.
	Heartbeat time.Duration
	// DefaultShards is the shard count for streams created without an
	// explicit SHARD clause (default 1: one mutex-guarded basket per
	// stream, the classic DataCell layout). Streams with more than one
	// shard ingest and fire factories in parallel per shard.
	DefaultShards int
}

// Engine is a DataCell instance: catalog, baskets, factories, scheduler.
type Engine struct {
	cat       *catalog.Catalog
	sched     *scheduler.Scheduler
	now       func() int64
	buf       int
	shards    int
	heartbeat *scheduler.Ticker

	// groupSeq numbers shared execution groups so scheduler group names
	// stay unique across teardown/re-create cycles of the same key.
	groupSeq atomic.Int64

	// Plan cache (query.go): compiled registration artifacts — optimized
	// plan, decomposition, resolved mode — keyed on (SQL text, requested
	// mode, catalog generation). Re-registering the same query text (fleets
	// of per-tenant threshold variants, reconnect storms) skips parse,
	// bind, optimize and decompose entirely; any DDL bumps the catalog
	// generation and
	// naturally orphans stale entries. planMu guards the map only; entries
	// are immutable once published.
	planMu    sync.Mutex
	planCache map[string]*planEntry
	planHits  atomic.Int64
	planMiss  atomic.Int64

	mu      sync.Mutex
	queries map[string]*Query
	fabric  Fabric // attached scale-out fabric (nil: single-process)
	closed  bool

	// Multi-tenant accounting (tenant.go). tenantMu guards only the map;
	// each tenantState carries its own leaf mutex.
	tenantMu sync.Mutex
	tenants  map[string]*tenantState

	// Stream→tenant ingest bindings (tenant.go): while a query registered
	// with TENANT t reads a stream, anonymous appends to that stream
	// (receptors, INSERT, plain Append) charge t's token bucket too.
	// ingestMu guards only the refcount map — lookups on the append path
	// copy the slice out before any blocking admission.
	ingestMu      sync.Mutex
	ingestTenants map[string]map[string]int // stream → tenant → query refcount
}

// Fabric is the engine-facing contract of a distributed shard fabric
// (internal/fabric): a coordinator that partitions exported streams' shard
// sets across worker processes. When a query group forms over an exported
// stream, the engine asks the fabric for a slicing spec instead of
// creating local basket cursors; workers slice their shard ranges and ship
// sealed epoch fragments back into the group's merger.
type Fabric interface {
	// AddSpec registers a slicing spec for a new query group over an
	// exported stream and returns its handle. The window carries the slide
	// granularity the workers must cut at.
	AddSpec(stream, key string, win *plan.Window, schema bat.Schema) (*FabricSpec, error)
	// Describe renders the fabric state for the \fabric introspection
	// command.
	Describe() string
}

// RemoteGroup is the fragment sink of one slicing spec: whatever consumes
// a remote-fed stream's sealed epoch fragments. A single-stream
// factory.Group implements it directly; a join group's sides each attach
// through a per-side adapter (the fabric neither knows nor cares which —
// it routes worker fragments to whatever the spec attached).
type RemoteGroup interface {
	// OfferRemote feeds one remote shard's freshly flushed epoch fragments
	// and watermark into the consumer's merger.
	OfferRemote(shard int, frags []*window.Frag, wm int64)
}

// FabricSpec is the handle for one remote slicing spec.
type FabricSpec struct {
	// Shards is the stream's total shard count across all workers.
	Shards int
	// Attach starts feeding the group: the fabric broadcasts the spec to
	// its workers and routes their fragments into g.OfferRemote. Call after
	// the creating member joined, before data must flow.
	Attach func(g RemoteGroup)
	// Advance forwards a time watermark to the workers.
	Advance func(watermark int64)
	// Drop retires the spec on all workers (wired into the group's Close).
	Drop func()
}

// AttachFabric connects a scale-out fabric to the engine. Attach before
// exporting streams or registering queries over them.
func (e *Engine) AttachFabric(f Fabric) {
	e.mu.Lock()
	e.fabric = f
	e.mu.Unlock()
}

// FabricStatus renders the attached fabric's state — the backing of the
// \fabric introspection command.
func (e *Engine) FabricStatus() string {
	e.mu.Lock()
	f := e.fabric
	e.mu.Unlock()
	if f == nil {
		return "(no fabric attached)"
	}
	return f.Describe()
}

func (e *Engine) fabricHandler() Fabric {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fabric
}

// Stream exposes a stream's catalog entry (the fabric marks exported
// streams and wires their baskets through it).
func (e *Engine) Stream(name string) (*catalog.Stream, bool) {
	return e.cat.Stream(name)
}

// New starts an engine.
func New(opts *Options) *Engine {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().UnixMicro() }
	}
	if o.ResultBuffer <= 0 {
		o.ResultBuffer = 1024
	}
	if o.DefaultShards <= 0 {
		o.DefaultShards = 1
	}
	e := &Engine{
		cat:     catalog.New(),
		sched:   scheduler.New(o.Workers),
		now:     o.Now,
		buf:     o.ResultBuffer,
		shards:  o.DefaultShards,
		queries: make(map[string]*Query),

		planCache: make(map[string]*planEntry),
	}
	if o.Heartbeat > 0 {
		e.heartbeat = scheduler.NewTicker(o.Heartbeat, func(time.Time) {
			e.AdvanceTime(e.now())
		})
	}
	return e
}

// Close stops all continuous queries and the scheduler.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	qs := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	if e.heartbeat != nil {
		e.heartbeat.Stop()
	}
	for _, q := range qs {
		q.Stop()
	}
	e.sched.Stop()
}

// Result is the outcome of Exec: a chunk for queries, a message for DDL.
type Result struct {
	Chunk *bat.Chunk
	Msg   string
	// Query is the handle when the statement registered a continuous
	// query.
	Query *Query
}

// Exec parses and executes one SQL statement: DDL, INSERT, a one-time
// SELECT (over tables and current basket contents), or REGISTER QUERY.
func (e *Engine) Exec(src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.execStmt(stmt)
}

// ExecScript executes a semicolon-separated sequence of statements,
// stopping at the first error. It returns the last statement's result.
func (e *Engine) ExecScript(src string) (*Result, error) {
	stmts, err := sql.ParseScript(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = e.execStmt(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

func (e *Engine) execStmt(stmt sql.Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.CreateTable:
		sch, err := schemaOf(s.Cols)
		if err != nil {
			return nil, err
		}
		if _, err := e.cat.CreateTable(s.Name, sch); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("table %s created", s.Name)}, nil

	case *sql.CreateStream:
		sch, err := schemaOf(s.Cols)
		if err != nil {
			return nil, err
		}
		shards := s.Shards
		if shards <= 0 {
			shards = e.shards
		}
		keyIdx := -1
		if s.Key != "" {
			if keyIdx = sch.Index(s.Key); keyIdx < 0 {
				return nil, fmt.Errorf("datacell: SHARD KEY %q is not a column of stream %s", s.Key, s.Name)
			}
		}
		if _, err := e.cat.CreateStreamSharded(s.Name, sch, shards, keyIdx); err != nil {
			return nil, err
		}
		if shards > 1 {
			return &Result{Msg: fmt.Sprintf("stream %s created (%d shards)", s.Name, shards)}, nil
		}
		return &Result{Msg: fmt.Sprintf("stream %s created", s.Name)}, nil

	case *sql.DropStmt:
		return e.execDrop(s)

	case *sql.Insert:
		return e.execInsert(s)

	case *sql.SelectStmt:
		c, err := e.Select(s)
		if err != nil {
			return nil, err
		}
		return &Result{Chunk: c}, nil

	case *sql.SetTenantQuota:
		e.SetTenantQuota(s.Tenant, TenantQuota{
			MaxQueries:          int(s.MaxQueries),
			MaxAppendRowsPerSec: s.AppendRowsPerSec,
			MaxLagWindows:       int(s.LagWindows),
		})
		return &Result{Msg: fmt.Sprintf("tenant %s quota set", s.Tenant)}, nil

	case *sql.RegisterQuery:
		mode := ModeAuto
		switch s.Mode {
		case "INCREMENTAL":
			mode = ModeIncremental
		case "REEVAL":
			mode = ModeReeval
		}
		q, err := e.register(s.Name, "", s.Select, mode, &RegisterOptions{Isolated: s.Isolated, Tenant: s.Tenant, NoFuse: s.NoFuse})
		if err != nil {
			return nil, err
		}
		return &Result{
			Msg:   fmt.Sprintf("query %s registered (%s)", s.Name, q.Mode()),
			Query: q,
		}, nil
	}
	return nil, fmt.Errorf("datacell: unsupported statement %T", stmt)
}

func schemaOf(cols []sql.ColumnDef) (bat.Schema, error) {
	names := make([]string, len(cols))
	types := make([]string, len(cols))
	for i, c := range cols {
		names[i], types[i] = c.Name, c.Type
	}
	return catalog.SchemaFromDefs(names, types)
}

func (e *Engine) execDrop(s *sql.DropStmt) (*Result, error) {
	switch s.What {
	case "TABLE":
		if err := e.cat.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("table %s dropped", s.Name)}, nil
	case "STREAM":
		if users := e.queriesOnStream(s.Name); len(users) > 0 {
			return nil, fmt.Errorf("datacell: stream %q is read by queries %v; drop them first",
				s.Name, users)
		}
		if err := e.cat.DropStream(s.Name); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("stream %s dropped", s.Name)}, nil
	case "QUERY":
		e.mu.Lock()
		q, ok := e.queries[s.Name]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("datacell: no query %q", s.Name)
		}
		q.Stop()
		return &Result{Msg: fmt.Sprintf("query %s dropped", s.Name)}, nil
	}
	return nil, fmt.Errorf("datacell: cannot drop %s", s.What)
}

func (e *Engine) queriesOnStream(stream string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for name, q := range e.queries {
		for _, b := range q.fac.Baskets() {
			if b == stream {
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// execInsert handles INSERT INTO for both tables and streams; inserting
// into a stream appends to its basket, which is how the demo's predefined
// scenarios seed data.
func (e *Engine) execInsert(s *sql.Insert) (*Result, error) {
	var sch bat.Schema
	isStream := false
	if t, ok := e.cat.Table(s.Table); ok {
		sch = t.Schema()
	} else if st, ok := e.cat.Stream(s.Table); ok {
		sch = st.Schema()
		isStream = true
	} else {
		return nil, fmt.Errorf("datacell: unknown table or stream %q", s.Table)
	}
	c := bat.NewChunk(sch)
	for _, row := range s.Rows {
		if len(row) != sch.Width() {
			return nil, fmt.Errorf("datacell: INSERT row has %d values, %s has %d columns",
				len(row), s.Table, sch.Width())
		}
		vals := make([]bat.Value, len(row))
		for i, ex := range row {
			lit, ok := ex.(*sql.Lit)
			if !ok {
				return nil, fmt.Errorf("datacell: INSERT values must be literals, got %s", ex)
			}
			v, err := litValue(lit, sch.Kinds[i])
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := c.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	if isStream {
		if err := e.appendChunkAs(s.Table, c, ""); err != nil {
			return nil, err
		}
	} else {
		t, _ := e.cat.Table(s.Table)
		if err := t.Append(c); err != nil {
			return nil, err
		}
	}
	return &Result{Msg: fmt.Sprintf("%d row(s) inserted into %s", c.Rows(), s.Table)}, nil
}

func litValue(l *sql.Lit, want bat.Kind) (bat.Value, error) {
	var v bat.Value
	switch l.Kind {
	case 'i':
		v = bat.IntValue(l.I)
	case 'f':
		v = bat.FloatValue(l.F)
	case 's':
		v = bat.StrValue(l.S)
	case 'b':
		v = bat.BoolValue(l.B)
	}
	if want == bat.Time && v.Kind == bat.Int {
		return bat.TimeValue(v.I), nil
	}
	if want == bat.Time && v.Kind == bat.Str {
		return bat.ParseValue(bat.Time, v.S)
	}
	return v, nil
}

// Select runs a one-time query: tables read their current snapshot and
// stream scans read the current basket contents.
func (e *Engine) Select(s *sql.SelectStmt) (*bat.Chunk, error) {
	bound, err := plan.Bind(e.cat, s)
	if err != nil {
		return nil, err
	}
	opt := plan.Optimize(bound)
	ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{}}
	for _, sc := range plan.Streams(opt) {
		if sc.Window != nil {
			return nil, fmt.Errorf("datacell: window on stream %q in a one-time query; use REGISTER QUERY", sc.Alias)
		}
		ex.StreamInputs[sc] = sc.Stream.Basket.Snapshot()
	}
	return ex.Run(opt)
}

// Query1 parses and runs a one-time SELECT.
func (e *Engine) Query1(src string) (*bat.Chunk, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("datacell: Query1 expects a SELECT")
	}
	return e.Select(sel)
}

// AppendOption adjusts one Append call. Options mix freely with data
// arguments in any order.
type AppendOption func(*appendConfig)

type appendConfig struct {
	tenant string
}

// AsTenant charges the appended rows to the named tenant's account: they
// count against its append-rate quota and block under its consumer-lag
// backpressure before entering the shared append path (a throttled tenant
// delays only itself).
func AsTenant(tenant string) AppendOption {
	return func(c *appendConfig) { c.tenant = tenant }
}

// Append is the single ingest entry point: it pushes data into a stream's
// basket or bulk-loads a persistent table, dispatching on what the name
// resolves to in the catalog. Data arguments are polymorphic —
//
//	e.Append("trades", []any{1, "MSFT", 31.2})          // boxed rows
//	e.Append("trades", chunk)                           // pre-built columnar chunk (zero-boxing)
//	e.Append("trades", chunk, datacell.AsTenant("acme")) // on a tenant's account
//
// any mix of []any rows, *bat.Chunk chunks, and AppendOption values, in
// any order. Rows are native Go values matching the schema (int/int64,
// float64, string, bool, time.Time) and are boxed into one chunk; each
// chunk argument appends as-is. A call with no data still appends one
// empty chunk to a stream, advancing its arrival clock — exactly the
// historical Append(stream) behavior heartbeat-style callers rely on.
// Every stream append, rows or chunk, tenant or anonymous, funnels
// through the same gated path (quota admission, then basket append).
func (e *Engine) Append(target string, args ...any) error {
	var cfg appendConfig
	var chunks []*bat.Chunk
	var rows [][]any
	for _, a := range args {
		switch v := a.(type) {
		case []any:
			rows = append(rows, v)
		case [][]any: // a whole batch of rows at once
			rows = append(rows, v...)
		case *bat.Chunk:
			chunks = append(chunks, v)
		case AppendOption:
			v(&cfg)
		default:
			return fmt.Errorf("datacell: Append argument %T (want []any row, *bat.Chunk, or AppendOption)", a)
		}
	}
	if _, ok := e.cat.Stream(target); ok {
		if len(rows) > 0 || len(chunks) == 0 {
			if err := e.appendRows(target, cfg.tenant, rows...); err != nil {
				return err
			}
		}
		for _, c := range chunks {
			if err := e.appendChunkAs(target, c, cfg.tenant); err != nil {
				return err
			}
		}
		return nil
	}
	t, ok := e.cat.Table(target)
	if !ok {
		return fmt.Errorf("datacell: unknown stream or table %q", target)
	}
	if cfg.tenant != "" {
		return fmt.Errorf("datacell: AsTenant applies to streams; %q is a table", target)
	}
	if len(rows) > 0 {
		c := bat.NewChunk(t.Schema())
		for _, row := range rows {
			vals := make([]bat.Value, len(row))
			for i, gv := range row {
				v, err := bat.GoValue(gv)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			if err := c.AppendRow(vals...); err != nil {
				return err
			}
		}
		if err := t.Append(c); err != nil {
			return err
		}
	}
	for _, c := range chunks {
		if err := t.Append(c); err != nil {
			return err
		}
	}
	return nil
}

// appendRows boxes rows into a chunk and runs the gated append path on
// tenant `as`'s account ("" = anonymous, charged to the stream's bound
// tenants only).
func (e *Engine) appendRows(stream, as string, rows ...[]any) error {
	st, ok := e.cat.Stream(stream)
	if !ok {
		return fmt.Errorf("datacell: unknown stream %q", stream)
	}
	c := bat.NewChunk(st.Schema())
	for _, row := range rows {
		vals := make([]bat.Value, len(row))
		for i, gv := range row {
			v, err := bat.GoValue(gv)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := c.AppendRow(vals...); err != nil {
			return err
		}
	}
	return e.appendChunkAs(stream, c, as)
}

// AppendTable bulk-loads a pre-built columnar chunk into a persistent
// table.
//
// Deprecated: use Append(table, c) — Append dispatches on the catalog.
func (e *Engine) AppendTable(table string, c *bat.Chunk) error {
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("datacell: unknown table %q", table)
	}
	return t.Append(c)
}

// AppendChunk pushes a pre-built columnar chunk into a stream's basket —
// the zero-boxing path used by receptors and benchmarks.
//
// Deprecated: use Append(stream, c).
func (e *Engine) AppendChunk(stream string, c *bat.Chunk) error {
	return e.appendChunkAs(stream, c, "")
}

// appendChunkAs is the single gated append path behind Append,
// AppendChunk, INSERT and their tenant variants: it charges tenant `as`
// (when named) plus every tenant bound to the stream by a TENANT query —
// except `as` itself, so AppendTenant onto the tenant's own stream is
// charged exactly once. Admission (which may block) happens before the
// basket append, outside every engine lock.
func (e *Engine) appendChunkAs(stream string, c *bat.Chunk, as string) error {
	st, ok := e.cat.Stream(stream)
	if !ok {
		return fmt.Errorf("datacell: unknown stream %q", stream)
	}
	if as != "" {
		e.tenantState(as).admitAppend(c.Rows())
	}
	for _, ts := range e.boundTenants(stream) {
		if ts.name != as {
			ts.admitAppend(c.Rows())
		}
	}
	return st.Basket.Append(c, e.now())
}

// Basket exposes a stream's sharded basket container (receptors append to
// it directly; the container routes rows to shards).
func (e *Engine) Basket(stream string) (*basket.Sharded, error) {
	st, ok := e.cat.Stream(stream)
	if !ok {
		return nil, fmt.Errorf("datacell: unknown stream %q", stream)
	}
	return st.Basket, nil
}

// Schema reports the schema of a table or stream.
func (e *Engine) Schema(name string) (bat.Schema, error) {
	if t, ok := e.cat.Table(name); ok {
		return t.Schema(), nil
	}
	if s, ok := e.cat.Stream(name); ok {
		return s.Schema(), nil
	}
	return bat.Schema{}, fmt.Errorf("datacell: unknown table or stream %q", name)
}

// PauseStream holds a stream's arrivals back; ResumeStream releases them
// (demo §4, Pause and Resume).
func (e *Engine) PauseStream(stream string) error {
	st, ok := e.cat.Stream(stream)
	if !ok {
		return fmt.Errorf("datacell: unknown stream %q", stream)
	}
	st.Basket.Pause()
	return nil
}

// ResumeStream releases a paused stream.
func (e *Engine) ResumeStream(stream string) error {
	st, ok := e.cat.Stream(stream)
	if !ok {
		return fmt.Errorf("datacell: unknown stream %q", stream)
	}
	st.Basket.Resume()
	return nil
}

// AdvanceTime closes time-window buckets up to the watermark (microsecond
// timestamp) across all continuous queries — the scheduler's time
// constraint for idle streams. Shared execution groups advance once for
// all their members; isolated factories advance individually. Tuple
// windows are unaffected.
func (e *Engine) AdvanceTime(watermark int64) {
	for _, g := range e.factoryGroups() {
		g.Advance(watermark)
	}
	e.mu.Lock()
	qs := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	for _, q := range qs {
		q.fac.Advance(watermark)
	}
}

// Drain blocks until every pending firing has completed — the
// synchronization point for tests and benchmarks after the last append.
func (e *Engine) Drain() { e.sched.Drain() }

// Catalog lists the engine's tables and streams as "kind name(schema)"
// lines, sorted.
func (e *Engine) Catalog() string {
	var b strings.Builder
	for _, n := range e.cat.TableNames() {
		t, _ := e.cat.Table(n)
		fmt.Fprintf(&b, "table  %s(%s) rows=%d\n", n, t.Schema(), t.Rows())
	}
	for _, n := range e.cat.StreamNames() {
		s, _ := e.cat.Stream(n)
		fmt.Fprintf(&b, "stream %s(%s)\n", n, s.Schema())
	}
	return b.String()
}

// Now reports the engine clock (microseconds).
func (e *Engine) Now() int64 { return e.now() }
